package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"blend/internal/berr"
	"blend/internal/table"
)

// Binary persistence for the AllTables index. The format is a simple
// little-endian stream:
//
//	v1 (monolithic, legacy):
//	magic "BLND" | version=1 | payload
//
//	v2 (sharded, legacy):
//	magic "BLND" | version=2 | layout u32 | numShards u32
//	numTables u32 | per table: owning shard u32 (global id = position)
//	per shard: payload
//
//	v3 (current, written by Save):
//	magic "BLND" | version=3 | kind u8 (0 = monolithic, 1 = sharded)
//	kind 0: payload | tombstones
//	kind 1: layout u32 | numShards u32
//	        numTables u32 | per table: owning shard u32 (global id = position)
//	        per shard: payload | tombstones
//
//	payload:
//	layout u32
//	numTables u32 | per table: name, numRows u32, numCols u32, per col: name, kind u8
//	dict: numValues u32 | per value: string
//	numEntries u32 | arrays: valIdx, tableIDs, columnIDs, rowIDs (i32),
//	                 superLo, superHi (u64), quadrant (i8)
//
//	tombstones:
//	numDead u32 | per dead table: (shard-)local table id u32
//
// In v1–v3, postings and table ranges are rebuilt on load (they are
// derivable), which keeps the on-disk footprint lean — part of what
// Table VIII measures. Save now writes v4, the segmented format described
// in segment.go: per-shard, per-section segments behind a footer
// directory, varint/delta-compressed, designed so MapFile can memory-map
// the file and decode shards lazily. Load reads all four versions, so
// files written before tombstones, sharding, or segments existed keep
// opening; SaveLegacy regenerates the old formats for compatibility
// tests and downgrades.

const (
	persistMagic             = "BLND"
	persistVersion           = 1
	persistVersionSharded    = 2
	persistVersionTombstones = 3

	persistKindMonolithic = 0
	persistKindSharded    = 1
)

// Save writes the monolithic store to w in the segmented v4 format.
func (s *Store) Save(w io.Writer) error {
	return writeSegmented(w, persistKindMonolithic, s.layout, []*Store{s}, nil)
}

// Save writes the sharded store to w in the segmented v4 format,
// round-tripping the shard count, the global table directory, and
// per-shard tombstones. On a lazily mapped store this first materializes
// every shard (a full save must serialize every shard anyway); a store
// opened from a monolithic v4 file is written back as monolithic.
func (s *ShardedStore) Save(w io.Writer) error {
	shards := make([]*Store, len(s.shards))
	for i := range shards {
		shards[i] = s.shard(i)
	}
	if s.mono && len(shards) == 1 {
		return writeSegmented(w, persistKindMonolithic, s.layout, shards, nil)
	}
	return writeSegmented(w, persistKindSharded, s.layout, shards, s.refs)
}

// saveV3 writes the monolithic store in the pre-segment v3 format.
func (s *Store) saveV3(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersionTombstones); err != nil {
		return err
	}
	if err := bw.WriteByte(persistKindMonolithic); err != nil {
		return err
	}
	if err := s.savePayload(bw); err != nil {
		return err
	}
	if err := s.saveTombstones(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// saveV3 writes the sharded store in the pre-segment v3 format.
func (s *ShardedStore) saveV3(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersionTombstones); err != nil {
		return err
	}
	if err := bw.WriteByte(persistKindSharded); err != nil {
		return err
	}
	if err := s.saveShardedBody(bw, true); err != nil {
		return err
	}
	return bw.Flush()
}

// saveShardedBody writes the v2/v3 sharded body: directory then per-shard
// payloads, with tombstone sections when withTombstones is set.
func (s *ShardedStore) saveShardedBody(bw *bufio.Writer, withTombstones bool) error {
	if err := writeU32(bw, uint32(s.layout)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.shards))); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.refs))); err != nil {
		return err
	}
	for _, r := range s.refs {
		if err := writeU32(bw, uint32(r.shard)); err != nil {
			return err
		}
	}
	for i := range s.shards {
		sh := s.shard(i)
		if err := sh.savePayload(bw); err != nil {
			return err
		}
		if withTombstones {
			if err := sh.saveTombstones(bw); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaveLegacy writes the store in an older on-disk format: v1
// (pre-tombstones) or v3 (pre-segments). It refuses to drop tombstone
// state silently and exists for compatibility tests, benchmarking old
// formats against v4, and downgrading an index for an older binary.
func (s *Store) SaveLegacy(w io.Writer, version uint32) error {
	switch version {
	case persistVersion:
		if s.numDead > 0 {
			return berr.New(berr.CodeBadRequest, "storage.save", "cannot write v1 format with %d tombstoned tables", s.numDead)
		}
		bw := bufio.NewWriter(w)
		if _, err := bw.WriteString(persistMagic); err != nil {
			return err
		}
		if err := writeU32(bw, persistVersion); err != nil {
			return err
		}
		if err := s.savePayload(bw); err != nil {
			return err
		}
		return bw.Flush()
	case persistVersionTombstones:
		return s.saveV3(w)
	default:
		return berr.New(berr.CodeBadRequest, "storage.save", "monolithic stores have no legacy version %d", version)
	}
}

// SaveLegacy writes the sharded store in an older on-disk format: v2
// (pre-tombstones) or v3 (pre-segments). See Store.SaveLegacy.
func (s *ShardedStore) SaveLegacy(w io.Writer, version uint32) error {
	switch version {
	case persistVersionSharded:
		if s.Tombstones() > 0 {
			return berr.New(berr.CodeBadRequest, "storage.save", "cannot write v2 format with %d tombstoned tables", s.Tombstones())
		}
		bw := bufio.NewWriter(w)
		if _, err := bw.WriteString(persistMagic); err != nil {
			return err
		}
		if err := writeU32(bw, persistVersionSharded); err != nil {
			return err
		}
		if err := s.saveShardedBody(bw, false); err != nil {
			return err
		}
		return bw.Flush()
	case persistVersionTombstones:
		return s.saveV3(w)
	default:
		return berr.New(berr.CodeBadRequest, "storage.save", "sharded stores have no legacy version %d", version)
	}
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error { return saveFile(s, path) }

// SaveFile writes the sharded store to a file.
func (s *ShardedStore) SaveFile(path string) error { return saveFile(s, path) }

type saver interface {
	Save(w io.Writer) error
}

func saveFile(s saver, path string) error {
	// Write to a temp file and rename into place. Besides crash safety,
	// this must never truncate the target in place: path may back the live
	// mapping of the very store being saved (open-mapped → append → save
	// flows), and an in-place os.Create would tear the pages out from
	// under the save's own lazy shard reads mid-write.
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil { // CreateTemp defaults to 0600
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func writeU32(bw *bufio.Writer, v uint32) error {
	return binary.Write(bw, binary.LittleEndian, v)
}

func writeStr(bw *bufio.Writer, v string) error {
	if err := writeU32(bw, uint32(len(v))); err != nil {
		return err
	}
	_, err := bw.WriteString(v)
	return err
}

// savePayload writes one store body (everything after magic and version).
func (s *Store) savePayload(bw *bufio.Writer) error {
	if err := writeU32(bw, uint32(s.layout)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.tables))); err != nil {
		return err
	}
	for _, m := range s.tables {
		if err := writeStr(bw, m.Name); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(m.NumRows)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(m.ColNames))); err != nil {
			return err
		}
		for c := range m.ColNames {
			if err := writeStr(bw, m.ColNames[c]); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(m.ColKinds[c])); err != nil {
				return err
			}
		}
	}
	if err := writeU32(bw, uint32(len(s.dict))); err != nil {
		return err
	}
	for _, v := range s.dict {
		if err := writeStr(bw, v); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(s.valIdx))); err != nil {
		return err
	}
	for _, arr := range [][]int32{s.valIdx, s.tableIDs, s.columnIDs, s.rowIDs} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superLo); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superHi); err != nil {
		return err
	}
	return binary.Write(bw, binary.LittleEndian, s.quadrant)
}

// saveTombstones writes the store's dead-table list (v3 section).
func (s *Store) saveTombstones(bw *bufio.Writer) error {
	if err := writeU32(bw, uint32(s.numDead)); err != nil {
		return err
	}
	for tid, d := range s.dead {
		if !d {
			continue
		}
		if err := writeU32(bw, uint32(tid)); err != nil {
			return err
		}
	}
	return nil
}

// All length- and count-prefixed reads allocate in bounded chunks:
// corrupted or truncated files then fail with an I/O error instead of
// attempting a multi-gigabyte allocation from an untrusted count.
const loadChunk = 1 << 16

func readU32(br *bufio.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(br, binary.LittleEndian, &v)
	return v, err
}

func readStr(br *bufio.Reader) (string, error) {
	n, err := readU32(br)
	if err != nil {
		return "", err
	}
	var sb []byte
	for remaining := int(n); remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		buf := make([]byte, c)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("read string payload: %w", err)
		}
		sb = append(sb, buf...)
		remaining -= c
	}
	return string(sb), nil
}

func readI32s(br *bufio.Reader, n int) ([]int32, error) {
	var out []int32
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]int32, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

func readU64s(br *bufio.Reader, n int) ([]uint64, error) {
	var out []uint64
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]uint64, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

func readI8s(br *bufio.Reader, n int) ([]int8, error) {
	var out []int8
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]int8, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

// Load reads an index previously written by Save — either version — and
// rebuilds its in-memory indexes. The concrete type of the result matches
// the file: *Store for v1, *ShardedStore for v2. Unreadable or corrupt
// inputs report typed bad-index errors.
func Load(r io.Reader) (Index, error) {
	idx, err := load(bufio.NewReader(r))
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.load", err)
	}
	return idx, nil
}

func load(br *bufio.Reader) (Index, error) {
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("read index magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad index magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case persistVersion:
		return loadPayload(br, false)
	case persistVersionSharded:
		return loadSharded(br, false)
	case persistVersionSegmented:
		// Eager v4: slurp the remainder and decode every shard up front.
		// MapFile is the lazy entry point.
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		data := make([]byte, 0, len(persistMagic)+4+len(rest))
		data = append(data, persistMagic...)
		data = appendU32(data, persistVersionSegmented)
		data = append(data, rest...)
		return loadSegmented(data)
	case persistVersionTombstones:
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case persistKindMonolithic:
			return loadPayload(br, true)
		case persistKindSharded:
			return loadSharded(br, true)
		default:
			return nil, fmt.Errorf("unknown v3 index kind %d", kind)
		}
	default:
		return nil, fmt.Errorf("unsupported index version %d", version)
	}
}

// loadSharded reads the v2/v3 sharded body: shard count, table directory,
// then one payload (with a tombstone section for v3) per shard.
func loadSharded(br *bufio.Reader, withTombstones bool) (*ShardedStore, error) {
	layoutRaw, err := readU32(br)
	if err != nil {
		return nil, err
	}
	numShards, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("implausible shard count %d", numShards)
	}
	numTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s := &ShardedStore{
		layout:    Layout(layoutRaw),
		shards:    make([]*Store, numShards),
		globalTID: make([][]int32, numShards),
	}
	localCount := make([]int32, numShards)
	for g := 0; g < int(numTables); g++ {
		sh, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if sh >= numShards {
			return nil, fmt.Errorf("table %d assigned to shard %d of %d", g, sh, numShards)
		}
		s.refs = append(s.refs, shardRef{shard: int32(sh), local: localCount[sh]})
		s.globalTID[sh] = append(s.globalTID[sh], int32(g))
		localCount[sh]++
	}
	for i := range s.shards {
		sub, err := loadPayload(br, withTombstones)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sub.layout != s.layout {
			return nil, fmt.Errorf("shard %d layout %v does not match index layout %v", i, sub.layout, s.layout)
		}
		if sub.NumTables() != int(localCount[i]) {
			return nil, fmt.Errorf("shard %d holds %d tables, directory says %d", i, sub.NumTables(), localCount[i])
		}
		s.shards[i] = sub
	}
	s.recomputeBase()
	return s, nil
}

// loadPayload reads one store body (plus the v3 tombstone section when
// withTombstones is set) and rebuilds its derived indexes.
func loadPayload(br *bufio.Reader, withTombstones bool) (*Store, error) {
	layoutRaw, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s := &Store{layout: Layout(layoutRaw), dictBase: make(map[string]int32)}

	numTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s.tables = make([]TableMeta, 0, minInt(int(numTables), 1<<16))
	for i := 0; i < int(numTables); i++ {
		var m TableMeta
		if m.Name, err = readStr(br); err != nil {
			return nil, err
		}
		nr, err := readU32(br)
		if err != nil {
			return nil, err
		}
		m.NumRows = int32(nr)
		nc, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for c := 0; c < int(nc); c++ {
			name, err := readStr(br)
			if err != nil {
				return nil, err
			}
			kb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			m.ColNames = append(m.ColNames, name)
			m.ColKinds = append(m.ColKinds, table.Kind(kb))
		}
		s.tables = append(s.tables, m)
	}

	numValues, err := readU32(br)
	if err != nil {
		return nil, err
	}
	dict := make([]string, 0, minInt(int(numValues), 1<<16))
	for i := 0; i < int(numValues); i++ {
		v, err := readStr(br)
		if err != nil {
			return nil, err
		}
		dict = append(dict, v)
		s.dictBase[v] = int32(i)
	}
	s.dict = dict

	numEntries, err := readU32(br)
	if err != nil {
		return nil, err
	}
	n := int(numEntries)
	if s.valIdx, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.tableIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.columnIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.rowIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.superLo, err = readU64s(br, n); err != nil {
		return nil, err
	}
	if s.superHi, err = readU64s(br, n); err != nil {
		return nil, err
	}
	if s.quadrant, err = readI8s(br, n); err != nil {
		return nil, err
	}
	// Referential integrity: every entry must point into the dictionary
	// and a known table; a corrupt file must not produce a store that
	// panics later.
	for i := 0; i < n; i++ {
		if s.valIdx[i] < 0 || int(s.valIdx[i]) >= len(s.dict) {
			return nil, fmt.Errorf("entry %d references value %d outside dictionary", i, s.valIdx[i])
		}
		tid := s.tableIDs[i]
		if tid < 0 || int(tid) >= len(s.tables) {
			return nil, fmt.Errorf("entry %d references table %d outside catalog", i, tid)
		}
		meta := &s.tables[tid]
		if s.columnIDs[i] < 0 || int(s.columnIDs[i]) >= len(meta.ColNames) {
			return nil, fmt.Errorf("entry %d references column %d outside table %q", i, s.columnIDs[i], meta.Name)
		}
		if s.rowIDs[i] < 0 || s.rowIDs[i] >= meta.NumRows {
			return nil, fmt.Errorf("entry %d references row %d outside table %q", i, s.rowIDs[i], meta.Name)
		}
	}

	s.dead = make([]bool, len(s.tables))
	if withTombstones {
		numDead, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(numDead) > len(s.tables) {
			return nil, fmt.Errorf("tombstone count %d exceeds %d tables", numDead, len(s.tables))
		}
		for i := 0; i < int(numDead); i++ {
			tid, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if int(tid) >= len(s.tables) {
				return nil, fmt.Errorf("tombstone references table %d outside catalog", tid)
			}
			if s.dead[tid] {
				return nil, fmt.Errorf("table %d tombstoned twice", tid)
			}
			s.dead[tid] = true
			s.numDead++
		}
	}

	s.rebuildIndexes()
	if s.layout == RowStore {
		s.packRows()
	}
	return s, nil
}

// LoadFile reads an index (any version) from a file, decoding everything
// eagerly. A missing or unreadable file reports a typed bad-index error
// wrapping the underlying cause, so errors.Is(err, fs.ErrNotExist) still
// works.
func LoadFile(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.open", err)
	}
	defer f.Close()
	return Load(f)
}

// MapFile opens an index file for serving. Segmented v4 files are
// memory-mapped: only the footer directory, the table-to-shard refs, and
// the tombstone bitmaps are decoded up front, so opening is O(footer)
// instead of O(index); shards materialize on first touch (see
// ShardedStore.shard). Pre-v4 files have no section directory, so they
// fall back to the eager loader — identical results, just without the
// lazy open. The returned index is a *ShardedStore for every v4 file
// (monolithic files become a single-shard store that still saves back as
// monolithic); callers that are done with a mapped index should Close it.
func MapFile(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.open", err)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.map", fmt.Errorf("read index header: %w", err))
	}
	if string(hdr[:4]) != persistMagic {
		f.Close()
		return nil, berr.New(berr.CodeBadIndex, "storage.map", "bad index magic %q", hdr[:4])
	}
	if getU32(hdr[4:]) != persistVersionSegmented {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, berr.Wrap(berr.CodeBadIndex, "storage.map", err)
		}
		defer f.Close()
		return Load(f)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.map", err)
	}
	data, release, err := mmapFile(f, fi.Size())
	f.Close() // the mapping outlives the descriptor
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.map", err)
	}
	sf, err := parseSegFile(data)
	if err != nil {
		release()
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.map", err)
	}
	sf.unmap = release
	return sf.lazyIndex(), nil
}

// rebuildIndexes reconstructs the inverted index and the TableId ranges
// from the attribute arrays.
func (s *Store) rebuildIndexes() {
	s.rebuildPostings()
	s.rebuildRanges()
}

// rebuildPostings reconstructs the inverted index from valIdx. The v4
// loader uses this alone: table ranges are stored in their own section.
func (s *Store) rebuildPostings() {
	s.postings = make([][]int32, len(s.dict))
	counts := make([]int32, len(s.dict))
	for _, vi := range s.valIdx {
		counts[vi]++
	}
	for vi, c := range counts {
		s.postings[vi] = make([]int32, 0, c)
	}
	for i, vi := range s.valIdx {
		s.postings[vi] = append(s.postings[vi], int32(i))
	}
}

// rebuildRanges reconstructs the TableId range index from tableIDs.
func (s *Store) rebuildRanges() {
	s.tableRange = make([][2]int32, len(s.tables))
	for i := range s.tableRange {
		s.tableRange[i] = [2]int32{int32(len(s.valIdx)), 0}
	}
	for i, tid := range s.tableIDs {
		r := &s.tableRange[tid]
		if int32(i) < r[0] {
			r[0] = int32(i)
		}
		if int32(i)+1 > r[1] {
			r[1] = int32(i) + 1
		}
	}
	// Tables with no entries get an empty range at 0.
	for i := range s.tableRange {
		if s.tableRange[i][0] > s.tableRange[i][1] {
			s.tableRange[i] = [2]int32{0, 0}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
