package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"blend/internal/berr"
	"blend/internal/table"
)

// Binary persistence for the AllTables index. The format is a simple
// little-endian stream:
//
//	v1 (monolithic, legacy):
//	magic "BLND" | version=1 | payload
//
//	v2 (sharded, legacy):
//	magic "BLND" | version=2 | layout u32 | numShards u32
//	numTables u32 | per table: owning shard u32 (global id = position)
//	per shard: payload
//
//	v3 (current, written by Save):
//	magic "BLND" | version=3 | kind u8 (0 = monolithic, 1 = sharded)
//	kind 0: payload | tombstones
//	kind 1: layout u32 | numShards u32
//	        numTables u32 | per table: owning shard u32 (global id = position)
//	        per shard: payload | tombstones
//
//	payload:
//	layout u32
//	numTables u32 | per table: name, numRows u32, numCols u32, per col: name, kind u8
//	dict: numValues u32 | per value: string
//	numEntries u32 | arrays: valIdx, tableIDs, columnIDs, rowIDs (i32),
//	                 superLo, superHi (u64), quadrant (i8)
//
//	tombstones:
//	numDead u32 | per dead table: (shard-)local table id u32
//
// Postings and table ranges are rebuilt on load (they are derivable), which
// keeps the on-disk footprint lean — part of what Table VIII measures. Save
// always writes v3, which round-trips tombstoned tables so a removed table
// stays removed across restarts without forcing a compaction at save time.
// Load reads all three versions, so v1/v2 files written before tombstones
// (or sharding) existed keep opening.

const (
	persistMagic             = "BLND"
	persistVersion           = 1
	persistVersionSharded    = 2
	persistVersionTombstones = 3

	persistKindMonolithic = 0
	persistKindSharded    = 1
)

// Save writes the monolithic store to w in the v3 format.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersionTombstones); err != nil {
		return err
	}
	if err := bw.WriteByte(persistKindMonolithic); err != nil {
		return err
	}
	if err := s.savePayload(bw); err != nil {
		return err
	}
	if err := s.saveTombstones(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Save writes the sharded store to w in the v3 format, round-tripping the
// shard count, the global table directory, and per-shard tombstones.
func (s *ShardedStore) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersionTombstones); err != nil {
		return err
	}
	if err := bw.WriteByte(persistKindSharded); err != nil {
		return err
	}
	if err := s.saveShardedBody(bw, true); err != nil {
		return err
	}
	return bw.Flush()
}

// saveShardedBody writes the v2/v3 sharded body: directory then per-shard
// payloads, with tombstone sections when withTombstones is set.
func (s *ShardedStore) saveShardedBody(bw *bufio.Writer, withTombstones bool) error {
	if err := writeU32(bw, uint32(s.layout)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.shards))); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.refs))); err != nil {
		return err
	}
	for _, r := range s.refs {
		if err := writeU32(bw, uint32(r.shard)); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		if err := sh.savePayload(bw); err != nil {
			return err
		}
		if withTombstones {
			if err := sh.saveTombstones(bw); err != nil {
				return err
			}
		}
	}
	return nil
}

// saveLegacyV1 writes the pre-tombstone monolithic format; kept so the
// compatibility tests can produce genuine v1 files. It refuses to drop
// tombstone state silently.
func (s *Store) saveLegacyV1(w io.Writer) error {
	if s.numDead > 0 {
		return fmt.Errorf("cannot write v1 format with %d tombstoned tables", s.numDead)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersion); err != nil {
		return err
	}
	if err := s.savePayload(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// saveLegacyV2 writes the pre-tombstone sharded format; kept so the
// compatibility tests can produce genuine v2 files.
func (s *ShardedStore) saveLegacyV2(w io.Writer) error {
	if s.Tombstones() > 0 {
		return fmt.Errorf("cannot write v2 format with %d tombstoned tables", s.Tombstones())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersionSharded); err != nil {
		return err
	}
	if err := s.saveShardedBody(bw, false); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error { return saveFile(s, path) }

// SaveFile writes the sharded store to a file.
func (s *ShardedStore) SaveFile(path string) error { return saveFile(s, path) }

type saver interface {
	Save(w io.Writer) error
}

func saveFile(s saver, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeU32(bw *bufio.Writer, v uint32) error {
	return binary.Write(bw, binary.LittleEndian, v)
}

func writeStr(bw *bufio.Writer, v string) error {
	if err := writeU32(bw, uint32(len(v))); err != nil {
		return err
	}
	_, err := bw.WriteString(v)
	return err
}

// savePayload writes one store body (everything after magic and version).
func (s *Store) savePayload(bw *bufio.Writer) error {
	if err := writeU32(bw, uint32(s.layout)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.tables))); err != nil {
		return err
	}
	for _, m := range s.tables {
		if err := writeStr(bw, m.Name); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(m.NumRows)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(m.ColNames))); err != nil {
			return err
		}
		for c := range m.ColNames {
			if err := writeStr(bw, m.ColNames[c]); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(m.ColKinds[c])); err != nil {
				return err
			}
		}
	}
	if err := writeU32(bw, uint32(len(s.dict))); err != nil {
		return err
	}
	for _, v := range s.dict {
		if err := writeStr(bw, v); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(s.valIdx))); err != nil {
		return err
	}
	for _, arr := range [][]int32{s.valIdx, s.tableIDs, s.columnIDs, s.rowIDs} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superLo); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superHi); err != nil {
		return err
	}
	return binary.Write(bw, binary.LittleEndian, s.quadrant)
}

// saveTombstones writes the store's dead-table list (v3 section).
func (s *Store) saveTombstones(bw *bufio.Writer) error {
	if err := writeU32(bw, uint32(s.numDead)); err != nil {
		return err
	}
	for tid, d := range s.dead {
		if !d {
			continue
		}
		if err := writeU32(bw, uint32(tid)); err != nil {
			return err
		}
	}
	return nil
}

// All length- and count-prefixed reads allocate in bounded chunks:
// corrupted or truncated files then fail with an I/O error instead of
// attempting a multi-gigabyte allocation from an untrusted count.
const loadChunk = 1 << 16

func readU32(br *bufio.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(br, binary.LittleEndian, &v)
	return v, err
}

func readStr(br *bufio.Reader) (string, error) {
	n, err := readU32(br)
	if err != nil {
		return "", err
	}
	var sb []byte
	for remaining := int(n); remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		buf := make([]byte, c)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("read string payload: %w", err)
		}
		sb = append(sb, buf...)
		remaining -= c
	}
	return string(sb), nil
}

func readI32s(br *bufio.Reader, n int) ([]int32, error) {
	var out []int32
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]int32, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

func readU64s(br *bufio.Reader, n int) ([]uint64, error) {
	var out []uint64
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]uint64, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

func readI8s(br *bufio.Reader, n int) ([]int8, error) {
	var out []int8
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]int8, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

// Load reads an index previously written by Save — either version — and
// rebuilds its in-memory indexes. The concrete type of the result matches
// the file: *Store for v1, *ShardedStore for v2. Unreadable or corrupt
// inputs report typed bad-index errors.
func Load(r io.Reader) (Index, error) {
	idx, err := load(bufio.NewReader(r))
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.load", err)
	}
	return idx, nil
}

func load(br *bufio.Reader) (Index, error) {
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("read index magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad index magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case persistVersion:
		return loadPayload(br, false)
	case persistVersionSharded:
		return loadSharded(br, false)
	case persistVersionTombstones:
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case persistKindMonolithic:
			return loadPayload(br, true)
		case persistKindSharded:
			return loadSharded(br, true)
		default:
			return nil, fmt.Errorf("unknown v3 index kind %d", kind)
		}
	default:
		return nil, fmt.Errorf("unsupported index version %d", version)
	}
}

// loadSharded reads the v2/v3 sharded body: shard count, table directory,
// then one payload (with a tombstone section for v3) per shard.
func loadSharded(br *bufio.Reader, withTombstones bool) (*ShardedStore, error) {
	layoutRaw, err := readU32(br)
	if err != nil {
		return nil, err
	}
	numShards, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("implausible shard count %d", numShards)
	}
	numTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s := &ShardedStore{
		layout:    Layout(layoutRaw),
		shards:    make([]*Store, numShards),
		globalTID: make([][]int32, numShards),
	}
	localCount := make([]int32, numShards)
	for g := 0; g < int(numTables); g++ {
		sh, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if sh >= numShards {
			return nil, fmt.Errorf("table %d assigned to shard %d of %d", g, sh, numShards)
		}
		s.refs = append(s.refs, shardRef{shard: int32(sh), local: localCount[sh]})
		s.globalTID[sh] = append(s.globalTID[sh], int32(g))
		localCount[sh]++
	}
	for i := range s.shards {
		sub, err := loadPayload(br, withTombstones)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sub.layout != s.layout {
			return nil, fmt.Errorf("shard %d layout %v does not match index layout %v", i, sub.layout, s.layout)
		}
		if sub.NumTables() != int(localCount[i]) {
			return nil, fmt.Errorf("shard %d holds %d tables, directory says %d", i, sub.NumTables(), localCount[i])
		}
		s.shards[i] = sub
	}
	s.recomputeBase()
	return s, nil
}

// loadPayload reads one store body (plus the v3 tombstone section when
// withTombstones is set) and rebuilds its derived indexes.
func loadPayload(br *bufio.Reader, withTombstones bool) (*Store, error) {
	layoutRaw, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s := &Store{layout: Layout(layoutRaw), dictIdx: make(map[string]int32)}

	numTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s.tables = make([]TableMeta, 0, minInt(int(numTables), 1<<16))
	for i := 0; i < int(numTables); i++ {
		var m TableMeta
		if m.Name, err = readStr(br); err != nil {
			return nil, err
		}
		nr, err := readU32(br)
		if err != nil {
			return nil, err
		}
		m.NumRows = int32(nr)
		nc, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for c := 0; c < int(nc); c++ {
			name, err := readStr(br)
			if err != nil {
				return nil, err
			}
			kb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			m.ColNames = append(m.ColNames, name)
			m.ColKinds = append(m.ColKinds, table.Kind(kb))
		}
		s.tables = append(s.tables, m)
	}

	numValues, err := readU32(br)
	if err != nil {
		return nil, err
	}
	dict := make([]string, 0, minInt(int(numValues), 1<<16))
	for i := 0; i < int(numValues); i++ {
		v, err := readStr(br)
		if err != nil {
			return nil, err
		}
		dict = append(dict, v)
		s.dictIdx[v] = int32(i)
	}
	s.dict = dict

	numEntries, err := readU32(br)
	if err != nil {
		return nil, err
	}
	n := int(numEntries)
	if s.valIdx, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.tableIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.columnIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.rowIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.superLo, err = readU64s(br, n); err != nil {
		return nil, err
	}
	if s.superHi, err = readU64s(br, n); err != nil {
		return nil, err
	}
	if s.quadrant, err = readI8s(br, n); err != nil {
		return nil, err
	}
	// Referential integrity: every entry must point into the dictionary
	// and a known table; a corrupt file must not produce a store that
	// panics later.
	for i := 0; i < n; i++ {
		if s.valIdx[i] < 0 || int(s.valIdx[i]) >= len(s.dict) {
			return nil, fmt.Errorf("entry %d references value %d outside dictionary", i, s.valIdx[i])
		}
		tid := s.tableIDs[i]
		if tid < 0 || int(tid) >= len(s.tables) {
			return nil, fmt.Errorf("entry %d references table %d outside catalog", i, tid)
		}
		meta := &s.tables[tid]
		if s.columnIDs[i] < 0 || int(s.columnIDs[i]) >= len(meta.ColNames) {
			return nil, fmt.Errorf("entry %d references column %d outside table %q", i, s.columnIDs[i], meta.Name)
		}
		if s.rowIDs[i] < 0 || s.rowIDs[i] >= meta.NumRows {
			return nil, fmt.Errorf("entry %d references row %d outside table %q", i, s.rowIDs[i], meta.Name)
		}
	}

	s.dead = make([]bool, len(s.tables))
	if withTombstones {
		numDead, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(numDead) > len(s.tables) {
			return nil, fmt.Errorf("tombstone count %d exceeds %d tables", numDead, len(s.tables))
		}
		for i := 0; i < int(numDead); i++ {
			tid, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if int(tid) >= len(s.tables) {
				return nil, fmt.Errorf("tombstone references table %d outside catalog", tid)
			}
			if s.dead[tid] {
				return nil, fmt.Errorf("table %d tombstoned twice", tid)
			}
			s.dead[tid] = true
			s.numDead++
		}
	}

	s.rebuildIndexes()
	if s.layout == RowStore {
		s.packRows()
	}
	return s, nil
}

// LoadFile reads an index (either version) from a file. A missing or
// unreadable file reports a typed bad-index error wrapping the underlying
// cause, so errors.Is(err, fs.ErrNotExist) still works.
func LoadFile(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.open", err)
	}
	defer f.Close()
	return Load(f)
}

// rebuildIndexes reconstructs the inverted index and the TableId ranges
// from the attribute arrays.
func (s *Store) rebuildIndexes() {
	s.postings = make([][]int32, len(s.dict))
	counts := make([]int32, len(s.dict))
	for _, vi := range s.valIdx {
		counts[vi]++
	}
	for vi, c := range counts {
		s.postings[vi] = make([]int32, 0, c)
	}
	for i, vi := range s.valIdx {
		s.postings[vi] = append(s.postings[vi], int32(i))
	}
	s.tableRange = make([][2]int32, len(s.tables))
	for i := range s.tableRange {
		s.tableRange[i] = [2]int32{int32(len(s.valIdx)), 0}
	}
	for i, tid := range s.tableIDs {
		r := &s.tableRange[tid]
		if int32(i) < r[0] {
			r[0] = int32(i)
		}
		if int32(i)+1 > r[1] {
			r[1] = int32(i) + 1
		}
	}
	// Tables with no entries get an empty range at 0.
	for i := range s.tableRange {
		if s.tableRange[i][0] > s.tableRange[i][1] {
			s.tableRange[i] = [2]int32{0, 0}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
