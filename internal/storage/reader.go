package storage

import (
	"io"

	"blend/internal/table"
	"blend/internal/xash"
)

// Reader is the read surface of the AllTables index: everything the SQL
// layer, the seekers, and the optimizer need to scan and reconstruct the
// unified relation. Both the monolithic Store and the ShardedStore satisfy
// it, so the engine above is agnostic to physical partitioning.
//
// Entry positions and table ids are global: a sharded implementation maps
// them onto its partitions internally. Implementations must be safe for
// concurrent readers once built (the engine scans shards in parallel).
type Reader interface {
	// Layout reports the physical layout of the AllTables tuples.
	Layout() Layout
	// NumShards reports how many partitions back the index (1 when
	// monolithic).
	NumShards() int
	// NumEntries reports the number of AllTables tuples.
	NumEntries() int
	// NumTables reports the number of indexed tables.
	NumTables() int
	// NumDistinctValues reports the number of distinct cell values.
	NumDistinctValues() int
	// TableMeta returns catalog information for a table id.
	TableMeta(tid int32) TableMeta
	// TableName returns the name of a table id, or "" if out of range.
	TableName(tid int32) string
	// TableIDByName returns the id of the named live table, or -1.
	TableIDByName(name string) int32
	// TableAlive reports whether a table id is allocated and not
	// tombstoned by RemoveTable.
	TableAlive(tid int32) bool
	// Tombstones reports the number of removed-but-not-compacted tables.
	Tombstones() int
	// Value returns the CellValue of entry i.
	Value(i int32) string
	// TableID returns the TableId of entry i.
	TableID(i int32) int32
	// ColumnID returns the ColumnId of entry i.
	ColumnID(i int32) int32
	// RowID returns the RowId of entry i.
	RowID(i int32) int32
	// SuperKey returns the XASH super key of entry i's row.
	SuperKey(i int32) xash.Key
	// Quadrant returns the quadrant bit of entry i, or QuadrantNull.
	Quadrant(i int32) int8
	// Postings returns the sorted entry positions whose CellValue equals
	// v. Callers must not modify the returned slice.
	Postings(v string) []int32
	// ScanPostings streams the (TableId, ColumnId, RowId) attributes of
	// every entry holding value v, in ascending entry-position order,
	// without materializing positions — the zero-allocation access path of
	// the engine's native seeker executor. Sharded implementations report
	// global table ids.
	ScanPostings(v string, fn func(tid, cid, rid int32))
	// ScanPostingsSuper is ScanPostings with the entry's row-level XASH
	// super key included — the candidate-row streaming surface of the
	// native multi-column executor, which prunes rows by super-key
	// containment before reconstructing them for exact validation.
	ScanPostingsSuper(v string, fn func(tid, cid, rid int32, super xash.Key))
	// ScanTableNumeric streams the numeric cells (Quadrant not null) of
	// table tid whose RowId < maxRow, in ascending (RowId, ColumnId)
	// order — the column-reconstruction stream of the native correlation
	// executor, which merge-joins it against key-column posting hits
	// without materializing either side. Entries within a table are
	// sorted by (RowId, ColumnId), so the rid bound cuts the scan short
	// instead of filtering it. A tombstoned (or, on a shard view,
	// foreign) table streams nothing.
	ScanTableNumeric(tid, maxRow int32, fn func(cid, rid int32, q int8))
	// Frequency returns the number of index entries holding value v.
	Frequency(v string) int
	// AvgFrequency returns the mean index frequency of the given values.
	AvgFrequency(values []string) float64
	// TableEntries returns the [start, end) entry range of a table id.
	TableEntries(tid int32) (start, end int32)
	// ReconstructRow materializes row rid of table tid from the index.
	ReconstructRow(tid, rid int32) []string
	// ReconstructTable materializes a full table from the index.
	ReconstructTable(tid int32) *table.Table
	// SizeBytes estimates the resident size of the index in bytes.
	SizeBytes() int64
	// ComputeStats scans the index once and returns its summary.
	ComputeStats() Stats
}

// Index is a Reader that also supports the maintenance surface: appending
// and removing tables incrementally, compaction, and binary persistence.
// blend.Discovery holds an Index; the engine's query path needs only the
// Reader half. None of the mutating methods are safe for use concurrent
// with readers — the engine serializes them behind its write lock.
type Index interface {
	Reader
	// AddTable appends one table to the index, returning its (global)
	// table id.
	AddTable(t *table.Table) int32
	// AddTablesBatch appends a batch of tables in order and returns their
	// ids. Sharded indexes apply the per-shard inserts concurrently,
	// bounded by workers (<= 0 means GOMAXPROCS), and refresh derived
	// global state once per batch.
	AddTablesBatch(tables []*table.Table, workers int) []int32
	// RemoveTable tombstones one table: it disappears from every read
	// surface while its entries stay allocated until Compact.
	RemoveTable(tid int32) error
	// Compact physically reclaims tombstoned tables, reassigning table
	// ids contiguously, and returns how many tables were removed.
	Compact() int
	// Save writes the index to w in the current (v4 segmented) format.
	Save(w io.Writer) error
	// SaveFile writes the index to a file.
	SaveFile(path string) error
}

// Sharded is implemented by indexes that partition tables across shards
// and can expose each partition as a standalone Reader. The engine uses the
// per-shard views to fan a seeker's SQL out across partitions concurrently;
// each view reports global table ids but shard-local entry positions.
type Sharded interface {
	// ShardReaders returns one Reader per shard.
	ShardReaders() []Reader
}

var (
	_ Index   = (*Store)(nil)
	_ Index   = (*ShardedStore)(nil)
	_ Sharded = (*ShardedStore)(nil)
	_ Reader  = (*shardView)(nil)
)
