package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Segmented v4 persistence. Unlike v1–v3, which serialize one contiguous
// payload that must be decoded front-to-back, v4 writes each shard as six
// independently decodable sections and closes the file with a footer
// directory of section offsets:
//
//	magic "BLND" | version=4 | kind u8 | layout u32 | numShards u32
//	per shard: catalog | dict | postings | super | ranges | tombstones
//	refs section (sharded kind only: global table id -> owning shard)
//	footer | footerOff u64 | trailing magic "BLN4"
//
// Every section carries a CRC-32C in the footer, so a reader can map the
// file, validate only the footer, and decode individual shards on first
// touch without reading the rest of the file. Integer-heavy sections are
// varint-compressed with delta encoding where values are correlated:
// TableIds are non-decreasing within a shard (entries are appended
// per-table), so they store as deltas; XASH super keys repeat for every
// cell of a row, so they store as XORs against the previous entry — a
// single byte per entry for same-row runs instead of 16 raw bytes.
//
// The footer holds, per shard: entry/table/tombstone counts plus
// (offset, length, crc) for each section. The trailing footerOff + "BLN4"
// trailer lets a reader locate the footer from the end of the file.

const (
	persistVersionSegmented = 4

	// Section indices within a shard's footer entry.
	secCatalog     = 0
	secDict        = 1
	secPostings    = 2
	secSuper       = 3
	secRanges      = 4
	secTombstones  = 5
	numSegSections = 6

	segTrailerMagic = "BLN4"
	// header: magic + version u32 + kind u8 + layout u32 + numShards u32
	segHeaderSize = 4 + 4 + 1 + 4 + 4
	// trailer: footerOff u64 + trailing magic
	segTrailerSize = 8 + 4
	// per shard footer entry: entries u64 + tables u32 + dead u32 +
	// numSegSections × (off u64, len u64, crc u32)
	segShardDirSize = 16 + numSegSections*20
	// footer fixed part: numShards u32 + refs (off u64, len u64, crc u32,
	// numTables u32) + footer crc u32
	segFooterFixed = 4 + 24 + 4

	// rawEntryBytes is what one entry costs in the uncompressed v1–v3
	// array encoding: 4×i32 + 2×u64 + 1×i8. The inspect tooling reports
	// compression ratios against this baseline.
	rawEntryBytes = 33
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segSection locates one CRC-protected byte range inside a v4 file.
type segSection struct {
	off int64
	n   int64
	crc uint32
}

// segWriter tracks the absolute file offset and a running CRC for the
// section being written. Errors are sticky.
type segWriter struct {
	w        *bufio.Writer
	off      int64
	secStart int64
	crc      hash.Hash32
	err      error
	buf      [binary.MaxVarintLen64]byte
}

func newSegWriter(w io.Writer) *segWriter {
	return &segWriter{w: bufio.NewWriter(w), crc: crc32.New(castagnoli)}
}

func (sw *segWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.w.Write(p); err != nil {
		sw.err = err
		return
	}
	sw.crc.Write(p)
	sw.off += int64(len(p))
}

func (sw *segWriter) byte(b byte) {
	sw.buf[0] = b
	sw.write(sw.buf[:1])
}

func (sw *segWriter) uvarint(v uint64) {
	n := binary.PutUvarint(sw.buf[:], v)
	sw.write(sw.buf[:n])
}

func (sw *segWriter) str(s string) {
	sw.uvarint(uint64(len(s)))
	if sw.err != nil {
		return
	}
	if _, err := sw.w.WriteString(s); err != nil {
		sw.err = err
		return
	}
	sw.crc.Write([]byte(s))
	sw.off += int64(len(s))
}

// begin starts a new section at the current offset.
func (sw *segWriter) begin() {
	sw.secStart = sw.off
	sw.crc.Reset()
}

// finish closes the current section, returning its directory entry.
func (sw *segWriter) finish() segSection {
	return segSection{off: sw.secStart, n: sw.off - sw.secStart, crc: sw.crc.Sum32()}
}

// writeShardSections emits the six sections of one shard and returns their
// directory entries.
func (sh *Store) writeShardSections(sw *segWriter) [numSegSections]segSection {
	var secs [numSegSections]segSection

	// Catalog: table names, row counts, column names and kinds.
	sw.begin()
	sw.uvarint(uint64(len(sh.tables)))
	for _, m := range sh.tables {
		sw.str(m.Name)
		sw.uvarint(uint64(m.NumRows))
		sw.uvarint(uint64(len(m.ColNames)))
		for c := range m.ColNames {
			sw.str(m.ColNames[c])
			sw.byte(byte(m.ColKinds[c]))
		}
	}
	secs[secCatalog] = sw.finish()

	// Dictionary: distinct cell values in id order.
	sw.begin()
	sw.uvarint(uint64(len(sh.dict)))
	for _, v := range sh.dict {
		sw.str(v)
	}
	secs[secDict] = sw.finish()

	// Postings: the four i32 attribute arrays, column-major so each array
	// compresses on its own distribution. TableIds are non-decreasing, so
	// they delta-encode.
	sw.begin()
	n := len(sh.valIdx)
	sw.uvarint(uint64(n))
	for _, v := range sh.valIdx {
		sw.uvarint(uint64(v))
	}
	prev := int32(0)
	for _, v := range sh.tableIDs {
		sw.uvarint(uint64(v - prev))
		prev = v
	}
	for _, v := range sh.columnIDs {
		sw.uvarint(uint64(v))
	}
	for _, v := range sh.rowIDs {
		sw.uvarint(uint64(v))
	}
	secs[secPostings] = sw.finish()

	// Super keys and quadrants. Consecutive entries usually share a row
	// (one entry per cell), so XOR against the previous entry collapses
	// same-row runs to one byte per half.
	sw.begin()
	var prevLo, prevHi uint64
	for i := 0; i < n; i++ {
		sw.uvarint(sh.superLo[i] ^ prevLo)
		sw.uvarint(sh.superHi[i] ^ prevHi)
		prevLo, prevHi = sh.superLo[i], sh.superHi[i]
	}
	for i := 0; i < n; i++ {
		sw.byte(byte(sh.quadrant[i]))
	}
	secs[secSuper] = sw.finish()

	// Table ranges: stored rather than rebuilt, so a mapped reader can
	// serve TableEntries without scanning the postings section.
	sw.begin()
	sw.uvarint(uint64(len(sh.tableRange)))
	for _, r := range sh.tableRange {
		sw.uvarint(uint64(r[0]))
		sw.uvarint(uint64(r[1] - r[0]))
	}
	secs[secRanges] = sw.finish()

	// Tombstones: local ids of removed tables, ascending.
	sw.begin()
	sw.uvarint(uint64(sh.numDead))
	for tid, d := range sh.dead {
		if d {
			sw.uvarint(uint64(tid))
		}
	}
	secs[secTombstones] = sw.finish()

	return secs
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v)), uint32(v>>32))
}

// writeSegmented writes a full v4 file: header, per-shard sections, the
// refs section (sharded kind), footer, and trailer. refs must be nil for
// the monolithic kind.
func writeSegmented(w io.Writer, kind byte, layout Layout, shards []*Store, refs []shardRef) error {
	sw := newSegWriter(w)

	var hdr []byte
	hdr = append(hdr, persistMagic...)
	hdr = appendU32(hdr, persistVersionSegmented)
	hdr = append(hdr, kind)
	hdr = appendU32(hdr, uint32(layout))
	hdr = appendU32(hdr, uint32(len(shards)))
	sw.write(hdr)

	secs := make([][numSegSections]segSection, len(shards))
	for i, sh := range shards {
		secs[i] = sh.writeShardSections(sw)
	}

	var refsSec segSection
	numTables := 0
	if kind == persistKindSharded {
		sw.begin()
		sw.uvarint(uint64(len(refs)))
		for _, r := range refs {
			sw.uvarint(uint64(r.shard))
		}
		refsSec = sw.finish()
		numTables = len(refs)
	} else {
		numTables = len(shards[0].tables)
	}

	footerOff := sw.off
	footer := make([]byte, 0, segFooterFixed+len(shards)*segShardDirSize)
	footer = appendU32(footer, uint32(len(shards)))
	for i, sh := range shards {
		footer = appendU64(footer, uint64(len(sh.valIdx)))
		footer = appendU32(footer, uint32(len(sh.tables)))
		footer = appendU32(footer, uint32(sh.numDead))
		for _, sec := range secs[i] {
			footer = appendU64(footer, uint64(sec.off))
			footer = appendU64(footer, uint64(sec.n))
			footer = appendU32(footer, sec.crc)
		}
	}
	footer = appendU64(footer, uint64(refsSec.off))
	footer = appendU64(footer, uint64(refsSec.n))
	footer = appendU32(footer, refsSec.crc)
	footer = appendU32(footer, uint32(numTables))
	footer = appendU32(footer, crc32.Checksum(footer, castagnoli))
	sw.write(footer)

	var trailer []byte
	trailer = appendU64(trailer, uint64(footerOff))
	trailer = append(trailer, segTrailerMagic...)
	sw.write(trailer)

	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// sectionName labels a section index for inspect output and errors.
func sectionName(i int) string {
	switch i {
	case secCatalog:
		return "catalog"
	case secDict:
		return "dict"
	case secPostings:
		return "postings"
	case secSuper:
		return "super"
	case secRanges:
		return "ranges"
	case secTombstones:
		return "tombstones"
	}
	return fmt.Sprintf("section%d", i)
}
