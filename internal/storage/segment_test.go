package storage

// Tests for the segmented v4 persistence format and its memory-mapped
// lazy-load path: differential lazy-vs-eager coverage across layouts and
// shard counts, residency accounting, legacy v1/v2/v3 fallback through
// MapFile, property-based round trips, maintenance ops on mapped stores,
// the footer-directory inspection API, and the on-disk compression bar.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"blend/internal/datalake"
	"blend/internal/table"
)

// saveTemp persists an index to a fresh file under t.TempDir.
func saveTemp(t *testing.T, s saver, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// readerProbe compares the cheap whole-index read surfaces of two Readers.
func readerProbe(t *testing.T, want, got Reader, label string) {
	t.Helper()
	if want.NumEntries() != got.NumEntries() || want.NumTables() != got.NumTables() {
		t.Fatalf("%s: shape mismatch: entries %d/%d tables %d/%d", label,
			want.NumEntries(), got.NumEntries(), want.NumTables(), got.NumTables())
	}
	if want.NumDistinctValues() != got.NumDistinctValues() {
		t.Fatalf("%s: distinct values %d vs %d", label,
			want.NumDistinctValues(), got.NumDistinctValues())
	}
	for _, v := range []string{"HR", "Firenze", "no-such-value"} {
		if want.Frequency(v) != got.Frequency(v) {
			t.Fatalf("%s: Frequency(%q) %d vs %d", label, v, want.Frequency(v), got.Frequency(v))
		}
		if !reflect.DeepEqual(want.Postings(v), got.Postings(v)) {
			t.Fatalf("%s: Postings(%q) diverge", label, v)
		}
	}
	for tid := int32(0); tid < int32(want.NumTables()); tid++ {
		name := want.TableName(tid)
		if got.TableIDByName(name) != want.TableIDByName(name) {
			t.Fatalf("%s: TableIDByName(%q) %d vs %d", label, name,
				want.TableIDByName(name), got.TableIDByName(name))
		}
	}
	if !reflect.DeepEqual(storeTuples(want), storeTuples(got)) {
		t.Fatalf("%s: table contents diverge", label)
	}
}

// TestMapFileMatchesEagerLoad is the core differential: the same v4 file
// read back eagerly (LoadFile) and lazily (MapFile) must expose identical
// content through every Reader surface, across layouts and shard counts.
func TestMapFileMatchesEagerLoad(t *testing.T) {
	for _, layout := range []Layout{ColumnStore, RowStore} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/shards=%d", layout, shards), func(t *testing.T) {
				orig := BuildSharded(layout, widerLake(), shards)
				path := saveTemp(t, orig, "lake.blend")
				eager, err := LoadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				mapped, err := MapFile(path)
				if err != nil {
					t.Fatal(err)
				}
				defer mapped.(*ShardedStore).Close()
				readerProbe(t, orig, eager, "eager")
				readerProbe(t, eager, mapped, "mapped")
			})
		}
	}
}

// TestMapFileMonolithicKind round-trips a monolithic store through the
// mapped path: the kind survives, and a re-save still eagerly loads back
// as a *Store.
func TestMapFileMonolithicKind(t *testing.T) {
	orig := Build(ColumnStore, lakeFixture())
	path := saveTemp(t, orig, "mono.blend")
	mapped, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := mapped.(*ShardedStore)
	if !ok {
		t.Fatalf("MapFile returned %T, want *ShardedStore wrapper", mapped)
	}
	defer sh.Close()
	readerProbe(t, orig, mapped, "mapped-mono")
	var buf bytes.Buffer
	if err := mapped.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.(*Store); !ok {
		t.Fatalf("re-saved monolithic mapped store loaded as %T, want *Store", back)
	}
	readerProbe(t, orig, back, "resaved")
}

// TestMapFileLazyResidency checks the laziness contract: opening touches
// no shard, a hash-routed name lookup touches exactly one, and a full
// content scan makes everything resident.
func TestMapFileLazyResidency(t *testing.T) {
	orig := BuildSharded(ColumnStore, widerLake(), 4)
	path := saveTemp(t, orig, "lazy.blend")
	mapped, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := mapped.(*ShardedStore)
	defer s.Close()
	if got := s.ResidentShards(); got != 0 {
		t.Fatalf("ResidentShards after open = %d, want 0", got)
	}
	if s.MappedBytes() <= 0 {
		t.Fatalf("MappedBytes = %d, want > 0", s.MappedBytes())
	}
	// Footer-backed surfaces must not force materialization.
	if s.NumEntries() != orig.NumEntries() || s.NumTables() != orig.NumTables() ||
		s.Tombstones() != 0 || !s.TableAlive(0) {
		t.Fatal("footer-backed shape surfaces diverge")
	}
	if got := s.ResidentShards(); got != 0 {
		t.Fatalf("ResidentShards after shape reads = %d, want 0", got)
	}
	if s.TableIDByName(orig.TableName(0)) != 0 {
		t.Fatal("TableIDByName lookup failed on mapped store")
	}
	if got := s.ResidentShards(); got != 1 {
		t.Fatalf("ResidentShards after one name lookup = %d, want 1", got)
	}
	storeTuples(s) // full scan
	if got := s.ResidentShards(); got != s.NumShards() {
		t.Fatalf("ResidentShards after full scan = %d, want %d", got, s.NumShards())
	}
	stats := s.ComputeStats()
	if stats.ResidentShards != s.NumShards() || stats.MappedBytes != s.MappedBytes() {
		t.Fatalf("stats residency = %+v", stats)
	}
}

// TestMapFileLegacyFallback feeds MapFile the three legacy formats; each
// must load eagerly (no mapping) with content identical to the original.
func TestMapFileLegacyFallback(t *testing.T) {
	write := func(t *testing.T, name string, save func(f *os.File) error) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	t.Run("v1-monolithic", func(t *testing.T) {
		orig := Build(ColumnStore, lakeFixture())
		path := write(t, "v1.blend", func(f *os.File) error { return orig.SaveLegacy(f, 1) })
		back, err := MapFile(path)
		if err != nil {
			t.Fatal(err)
		}
		readerProbe(t, orig, back, "v1")
	})
	t.Run("v2-sharded", func(t *testing.T) {
		orig := BuildSharded(RowStore, widerLake(), 4)
		path := write(t, "v2.blend", func(f *os.File) error { return orig.SaveLegacy(f, 2) })
		back, err := MapFile(path)
		if err != nil {
			t.Fatal(err)
		}
		readerProbe(t, orig, back, "v2")
		if back.(*ShardedStore).MappedBytes() != 0 {
			t.Fatal("legacy file reports mapped bytes")
		}
	})
	t.Run("v3-tombstones", func(t *testing.T) {
		orig := BuildSharded(ColumnStore, widerLake(), 4)
		if err := orig.RemoveTable(2); err != nil {
			t.Fatal(err)
		}
		path := write(t, "v3.blend", func(f *os.File) error { return orig.SaveLegacy(f, 3) })
		back, err := MapFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.Tombstones() != 1 {
			t.Fatalf("tombstones = %d, want 1", back.Tombstones())
		}
		readerProbe(t, orig, back, "v3")
	})
}

// TestSegmentedQuickRoundTrip property-tests the v4 writer/reader pair
// and the v3 downgrade path against random cell content.
func TestSegmentedQuickRoundTrip(t *testing.T) {
	f := func(cells [][2]string) bool {
		tb := table.New("q", "a", "b")
		for _, c := range cells {
			tb.MustAppendRow(c[0], c[1])
		}
		tb.InferKinds()
		orig := BuildSharded(ColumnStore, []*table.Table{tb}, 2)
		var v4, v3 bytes.Buffer
		if err := orig.Save(&v4); err != nil {
			return false
		}
		if err := orig.SaveLegacy(&v3, 3); err != nil {
			return false
		}
		back4, err := Load(&v4)
		if err != nil {
			return false
		}
		back3, err := Load(&v3)
		if err != nil {
			return false
		}
		want := storeTuples(orig)
		return reflect.DeepEqual(want, storeTuples(back4)) &&
			reflect.DeepEqual(want, storeTuples(back3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMaintenanceOnMappedStore runs every mutating op against a lazily
// mapped store and an eagerly loaded twin; the stores must stay
// indistinguishable through add, remove, compact, and a save/reload.
func TestMaintenanceOnMappedStore(t *testing.T) {
	orig := BuildSharded(ColumnStore, batchLake("M", 12), 4)
	path := saveTemp(t, orig, "maint.blend")
	eager, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.(*ShardedStore).Close()

	check := func(step string) {
		t.Helper()
		if !reflect.DeepEqual(storeTuples(eager), storeTuples(mapped)) {
			t.Fatalf("after %s: mapped store diverged from eager twin", step)
		}
		if eager.Tombstones() != mapped.Tombstones() {
			t.Fatalf("after %s: tombstones %d vs %d", step, eager.Tombstones(), mapped.Tombstones())
		}
	}

	extra := batchLake("N", 5)
	eager.AddTablesBatch(extra, 2)
	mapped.AddTablesBatch(extra, 2)
	check("AddTablesBatch")

	victim := mapped.TableIDByName("M03")
	if victim < 0 {
		t.Fatal("victim table missing")
	}
	if err := eager.RemoveTable(victim); err != nil {
		t.Fatal(err)
	}
	if err := mapped.RemoveTable(victim); err != nil {
		t.Fatal(err)
	}
	check("RemoveTable")

	if e, m := eager.Compact(), mapped.Compact(); e != m {
		t.Fatalf("Compact removed %d vs %d", e, m)
	}
	check("Compact")

	var buf bytes.Buffer
	if err := mapped.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(storeTuples(eager), storeTuples(back)) {
		t.Fatal("mapped store save/reload diverged")
	}
}

// TestSaveOverOwnMapping overwrites the file backing a lazily mapped
// store with that store's own SaveFile — the CLI's open → append → save
// in-place flow. The save must not read torn pages from its own mapping
// (saveFile writes a temp file and renames), and both the live store and
// a fresh open of the path must see the appended state.
func TestSaveOverOwnMapping(t *testing.T) {
	orig := BuildSharded(ColumnStore, batchLake("S", 8), 4)
	path := saveTemp(t, orig, "self.blend")
	idx, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := idx.(*ShardedStore)
	defer s.Close()
	s.AddTablesBatch(batchLake("T", 4), 2)
	if err := s.SaveFile(path); err != nil { // no shard is resident yet beyond the touched ones
		t.Fatal(err)
	}
	if s.TableIDByName("T02") < 0 {
		t.Fatal("appended table missing from live store after save")
	}
	back, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.(*ShardedStore).Close()
	if !reflect.DeepEqual(storeTuples(s), storeTuples(back)) {
		t.Fatal("reopened file diverges from the store that saved it")
	}
	if back.NumTables() != 12 {
		t.Fatalf("reopened tables = %d, want 12", back.NumTables())
	}
}

// TestInspectFile checks the footer-directory inspection API against the
// store that wrote the file.
func TestInspectFile(t *testing.T) {
	orig := BuildSharded(ColumnStore, widerLake(), 4)
	if err := orig.RemoveTable(1); err != nil {
		t.Fatal(err)
	}
	path := saveTemp(t, orig, "inspect.blend")
	info, err := InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FileBytes != st.Size() {
		t.Fatalf("FileBytes = %d, stat = %d", info.FileBytes, st.Size())
	}
	if info.Tables != orig.NumTables() || info.Entries != int64(orig.NumEntries()) || info.Tombstones != 1 {
		t.Fatalf("shape = %+v", info)
	}
	if len(info.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(info.Shards))
	}
	if info.FooterOff <= 0 || info.FooterOff >= info.FileBytes {
		t.Fatalf("footer offset %d out of file [0, %d)", info.FooterOff, info.FileBytes)
	}
	var entries int64
	for si, sh := range info.Shards {
		entries += int64(sh.Entries)
		for _, sec := range sh.Sections {
			if sec.Off < 0 || sec.Off+sec.Bytes > info.FileBytes {
				t.Fatalf("shard %d section %s out of bounds: %+v", si, sec.Name, sec)
			}
		}
	}
	if entries != info.Entries {
		t.Fatalf("per-shard entries sum %d != %d", entries, info.Entries)
	}
	if info.EntryBytes() <= 0 || info.EntryBytes() >= info.RawEntryBytes() {
		t.Fatalf("entry bytes %d not compressed below raw %d", info.EntryBytes(), info.RawEntryBytes())
	}
	// Legacy files are rejected with the version named, not misparsed.
	legacy := filepath.Join(t.TempDir(), "v3.blend")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	orig2 := BuildSharded(ColumnStore, widerLake(), 2)
	if err := orig2.SaveLegacy(f, 3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := InspectFile(legacy); err == nil {
		t.Fatal("InspectFile accepted a v3 file")
	}
}

// TestSegmentedSmallerThanV3 pins the PR's compression bar: on a
// realistic synthetic lake the segmented varint format must be at least
// 2x smaller on disk than the fixed-width v3 encoding of the same store.
func TestSegmentedSmallerThanV3(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "size-bar", NumTables: 32, ColsPerTable: 4, RowsPerTable: 60,
		VocabSize: 4000, Seed: 7,
	})
	s := BuildSharded(ColumnStore, lake.Tables, 4)
	var v4, v3 bytes.Buffer
	if err := s.Save(&v4); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveLegacy(&v3, 3); err != nil {
		t.Fatal(err)
	}
	if v3.Len() < 2*v4.Len() {
		t.Fatalf("v4 not 2x smaller: v3=%d bytes, v4=%d bytes (ratio %.2f)",
			v3.Len(), v4.Len(), float64(v3.Len())/float64(v4.Len()))
	}
}
