package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"blend/internal/table"
)

// segDecoder reads varint-encoded values from one section's byte range.
// All reads are bounds-checked: a decoder never panics on truncated or
// hand-crafted input, it returns errors that the caller surfaces as
// bad-index failures.
type segDecoder struct {
	b   []byte // mmapref: mapped (decoders read in place; decoded values are copied out)
	pos int
}

func (d *segDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

// count reads a uvarint that will size an allocation or an int32 id space;
// it must fit comfortably in an int and below 1<<31.
func (d *segDecoder) count(what string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= 1<<31 {
		return 0, fmt.Errorf("implausible %s count %d", what, v)
	}
	return int(v), nil
}

func (d *segDecoder) str() (string, error) {
	n, err := d.count("string length")
	if err != nil {
		return "", err
	}
	if d.pos+n > len(d.b) {
		return "", fmt.Errorf("string of %d bytes overruns section", n)
	}
	// string() copies, so decoded values never alias the mapped file.
	s := string(d.b[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *segDecoder) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, fmt.Errorf("truncated byte at offset %d", d.pos)
	}
	b := d.b[d.pos]
	d.pos++
	return b, nil
}

func (d *segDecoder) done() error {
	if d.pos != len(d.b) {
		return fmt.Errorf("%d trailing bytes in section", len(d.b)-d.pos)
	}
	return nil
}

// segShard is the footer directory entry for one shard, plus the eagerly
// decoded tombstone bitmap (needed for TableAlive before materialization).
type segShard struct {
	entries int
	tables  int
	numDead int
	dead    []bool
	secs    [numSegSections]segSection
}

// segFile is a parsed v4 file: the raw (usually memory-mapped) bytes plus
// the validated footer directory. Shard bodies are decoded on demand by
// materializeShard.
type segFile struct {
	data  []byte // mmapref: mapped — valid only until unmap; see close()
	unmap func() error

	kind      byte
	layout    Layout
	shards    []segShard
	refsSec   segSection
	numTables int
	refs      []shardRef
	globalTID [][]int32

	closeOnce sync.Once
	closeErr  error
}

func (sf *segFile) close() error {
	sf.closeOnce.Do(func() {
		if sf.unmap != nil {
			sf.closeErr = sf.unmap()
		}
	})
	return sf.closeErr
}

// section returns the byte range of a validated section. The slice
// aliases the mapping, so it must not be retained past close/Compact —
// decode in place and copy values out (see the mmapref analyzer).
//
// mmapref: returns mapped memory
func (sf *segFile) section(sec segSection) []byte {
	return sf.data[sec.off : sec.off+sec.n]
}

// checkSection verifies a section's CRC-32C. Structural bounds were
// validated at parse time; the CRC is deferred to first touch so opening
// a file stays O(footer).
func (sf *segFile) checkSection(shard, idx int) error {
	sec := sf.shards[shard].secs[idx]
	if crc32.Checksum(sf.section(sec), castagnoli) != sec.crc {
		return fmt.Errorf("shard %d %s section: checksum mismatch", shard, sectionName(idx))
	}
	return nil
}

// parseSegFile validates the structure of a v4 file — header, trailer,
// footer directory, section bounds — and eagerly decodes the two small
// global sections (refs, per-shard tombstones) that every operation needs
// before any shard is materialized. It does not touch the shard bodies.
func parseSegFile(data []byte) (*segFile, error) {
	if len(data) < segHeaderSize+segFooterFixed+segTrailerSize {
		return nil, fmt.Errorf("file of %d bytes is too small for a v4 index", len(data))
	}
	if string(data[:4]) != persistMagic {
		return nil, fmt.Errorf("bad index magic %q", data[:4])
	}
	if v := getU32(data[4:]); v != persistVersionSegmented {
		return nil, fmt.Errorf("not a v4 segmented index (version %d)", v)
	}
	kind := data[8]
	if kind != persistKindMonolithic && kind != persistKindSharded {
		return nil, fmt.Errorf("unknown index kind %d", kind)
	}
	sf := &segFile{data: data, kind: kind, layout: Layout(getU32(data[9:]))}
	numShards := int(getU32(data[13:]))
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("implausible shard count %d", numShards)
	}
	if kind == persistKindMonolithic && numShards != 1 {
		return nil, fmt.Errorf("monolithic index claims %d shards", numShards)
	}

	if string(data[len(data)-4:]) != segTrailerMagic {
		return nil, fmt.Errorf("bad trailer magic %q", data[len(data)-4:])
	}
	footerOff := int64(getU64(data[len(data)-segTrailerSize:]))
	footerSize := int64(segFooterFixed + numShards*segShardDirSize)
	if footerOff < segHeaderSize || footerOff+footerSize != int64(len(data)-segTrailerSize) {
		return nil, fmt.Errorf("footer offset %d inconsistent with file size %d", footerOff, len(data))
	}
	footer := data[footerOff : footerOff+footerSize]
	if crc32.Checksum(footer[:len(footer)-4], castagnoli) != getU32(footer[len(footer)-4:]) {
		return nil, fmt.Errorf("footer checksum mismatch")
	}
	if int(getU32(footer)) != numShards {
		return nil, fmt.Errorf("footer shard count %d does not match header %d", getU32(footer), numShards)
	}

	p := 4
	sf.shards = make([]segShard, numShards)
	for i := range sf.shards {
		sh := &sf.shards[i]
		entries := getU64(footer[p:])
		if entries >= 1<<31 {
			return nil, fmt.Errorf("shard %d: implausible entry count %d", i, entries)
		}
		sh.entries = int(entries)
		sh.tables = int(getU32(footer[p+8:]))
		sh.numDead = int(getU32(footer[p+12:]))
		if sh.tables > 1<<30 || sh.numDead > sh.tables {
			return nil, fmt.Errorf("shard %d: implausible table/tombstone counts %d/%d", i, sh.tables, sh.numDead)
		}
		p += 16
		for j := 0; j < numSegSections; j++ {
			sec := segSection{off: int64(getU64(footer[p:])), n: int64(getU64(footer[p+8:])), crc: getU32(footer[p+16:])}
			p += 20
			if sec.off < segHeaderSize || sec.n < 0 || sec.off+sec.n > footerOff {
				return nil, fmt.Errorf("shard %d %s section [%d,+%d) outside file body", i, sectionName(j), sec.off, sec.n)
			}
			sh.secs[j] = sec
		}
	}
	sf.refsSec = segSection{off: int64(getU64(footer[p:])), n: int64(getU64(footer[p+8:])), crc: getU32(footer[p+16:])}
	sf.numTables = int(getU32(footer[p+20:]))
	if sf.numTables > 1<<30 {
		return nil, fmt.Errorf("implausible table count %d", sf.numTables)
	}

	if err := sf.decodeRefs(); err != nil {
		return nil, err
	}
	return sf, sf.decodeTombstones()
}

// decodeRefs reads (or, for the monolithic kind, synthesizes) the global
// table directory and checks it against the per-shard table counts.
func (sf *segFile) decodeRefs() error {
	ns := len(sf.shards)
	if sf.kind == persistKindMonolithic {
		if sf.refsSec.n != 0 {
			return fmt.Errorf("monolithic index carries a refs section")
		}
		if sf.numTables != sf.shards[0].tables {
			return fmt.Errorf("table count %d does not match shard catalog %d", sf.numTables, sf.shards[0].tables)
		}
		sf.refs = make([]shardRef, sf.numTables)
		ids := make([]int32, sf.numTables)
		for g := range sf.refs {
			sf.refs[g] = shardRef{shard: 0, local: int32(g)}
			ids[g] = int32(g)
		}
		sf.globalTID = [][]int32{ids}
		return nil
	}
	if sf.refsSec.off < segHeaderSize || sf.refsSec.n < 0 || sf.refsSec.off+sf.refsSec.n > int64(len(sf.data)-segTrailerSize) {
		return fmt.Errorf("refs section [%d,+%d) outside file body", sf.refsSec.off, sf.refsSec.n)
	}
	raw := sf.section(sf.refsSec)
	if crc32.Checksum(raw, castagnoli) != sf.refsSec.crc {
		return fmt.Errorf("refs section: checksum mismatch")
	}
	d := &segDecoder{b: raw}
	n, err := d.count("table")
	if err != nil {
		return err
	}
	if n != sf.numTables {
		return fmt.Errorf("refs section holds %d tables, footer says %d", n, sf.numTables)
	}
	sf.refs = make([]shardRef, 0, minInt(n, 1<<16))
	sf.globalTID = make([][]int32, ns)
	localCount := make([]int32, ns)
	for g := 0; g < n; g++ {
		sh, err := d.uvarint()
		if err != nil {
			return err
		}
		if sh >= uint64(ns) {
			return fmt.Errorf("table %d assigned to shard %d of %d", g, sh, ns)
		}
		sf.refs = append(sf.refs, shardRef{shard: int32(sh), local: localCount[sh]})
		sf.globalTID[sh] = append(sf.globalTID[sh], int32(g))
		localCount[sh]++
	}
	if err := d.done(); err != nil {
		return fmt.Errorf("refs section: %w", err)
	}
	for i := range sf.shards {
		if int(localCount[i]) != sf.shards[i].tables {
			return fmt.Errorf("shard %d holds %d tables, directory says %d", i, sf.shards[i].tables, localCount[i])
		}
	}
	return nil
}

// decodeTombstones eagerly decodes every shard's (tiny) tombstone section
// into a bitmap, so TableAlive works without materializing the shard.
func (sf *segFile) decodeTombstones() error {
	for i := range sf.shards {
		sh := &sf.shards[i]
		if err := sf.checkSection(i, secTombstones); err != nil {
			return err
		}
		d := &segDecoder{b: sf.section(sh.secs[secTombstones])}
		n, err := d.count("tombstone")
		if err != nil {
			return err
		}
		if n != sh.numDead {
			return fmt.Errorf("shard %d: tombstone section holds %d ids, footer says %d", i, n, sh.numDead)
		}
		sh.dead = make([]bool, sh.tables)
		prev := -1
		for k := 0; k < n; k++ {
			tid, err := d.count("tombstone id")
			if err != nil {
				return err
			}
			if tid >= sh.tables || tid <= prev {
				return fmt.Errorf("shard %d: tombstone id %d invalid after %d", i, tid, prev)
			}
			sh.dead[tid] = true
			prev = tid
		}
		if err := d.done(); err != nil {
			return fmt.Errorf("shard %d tombstones: %w", i, err)
		}
	}
	return nil
}

// materializeShard fully decodes one shard into a heap-resident Store,
// verifying section CRCs and referential integrity first — the same
// guarantees the eager v1–v3 loaders give.
func (sf *segFile) materializeShard(i int) (*Store, error) {
	for _, idx := range []int{secCatalog, secDict, secPostings, secSuper, secRanges} {
		if err := sf.checkSection(i, idx); err != nil {
			return nil, err
		}
	}
	info := &sf.shards[i]
	s := &Store{layout: sf.layout, dictBase: make(map[string]int32)}

	d := &segDecoder{b: sf.section(info.secs[secCatalog])}
	numTables, err := d.count("table")
	if err != nil {
		return nil, err
	}
	if numTables != info.tables {
		return nil, fmt.Errorf("catalog holds %d tables, footer says %d", numTables, info.tables)
	}
	s.tables = make([]TableMeta, 0, minInt(numTables, 1<<16))
	for t := 0; t < numTables; t++ {
		var m TableMeta
		if m.Name, err = d.str(); err != nil {
			return nil, err
		}
		nr, err := d.count("row")
		if err != nil {
			return nil, err
		}
		m.NumRows = int32(nr)
		nc, err := d.count("column")
		if err != nil {
			return nil, err
		}
		for c := 0; c < nc; c++ {
			name, err := d.str()
			if err != nil {
				return nil, err
			}
			kb, err := d.byte()
			if err != nil {
				return nil, err
			}
			m.ColNames = append(m.ColNames, name)
			m.ColKinds = append(m.ColKinds, table.Kind(kb))
		}
		s.tables = append(s.tables, m)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}

	d = &segDecoder{b: sf.section(info.secs[secDict])}
	numValues, err := d.count("dictionary")
	if err != nil {
		return nil, err
	}
	s.dict = make([]string, 0, minInt(numValues, 1<<16))
	for v := 0; v < numValues; v++ {
		val, err := d.str()
		if err != nil {
			return nil, err
		}
		s.dictBase[val] = int32(len(s.dict))
		s.dict = append(s.dict, val)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("dict: %w", err)
	}

	d = &segDecoder{b: sf.section(info.secs[secPostings])}
	n, err := d.count("entry")
	if err != nil {
		return nil, err
	}
	if n != info.entries {
		return nil, fmt.Errorf("postings hold %d entries, footer says %d", n, info.entries)
	}
	readI32Col := func(what string) ([]int32, error) {
		out := make([]int32, 0, minInt(n, 1<<20))
		for k := 0; k < n; k++ {
			v, err := d.count(what)
			if err != nil {
				return nil, err
			}
			out = append(out, int32(v))
		}
		return out, nil
	}
	if s.valIdx, err = readI32Col("value id"); err != nil {
		return nil, err
	}
	s.tableIDs = make([]int32, 0, minInt(n, 1<<20))
	prev := int32(0)
	for k := 0; k < n; k++ {
		delta, err := d.count("table id delta")
		if err != nil {
			return nil, err
		}
		prev += int32(delta)
		if prev < 0 {
			return nil, fmt.Errorf("entry %d: table id overflows", k)
		}
		s.tableIDs = append(s.tableIDs, prev)
	}
	if s.columnIDs, err = readI32Col("column id"); err != nil {
		return nil, err
	}
	if s.rowIDs, err = readI32Col("row id"); err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("postings: %w", err)
	}

	d = &segDecoder{b: sf.section(info.secs[secSuper])}
	s.superLo = make([]uint64, 0, minInt(n, 1<<20))
	s.superHi = make([]uint64, 0, minInt(n, 1<<20))
	var prevLo, prevHi uint64
	for k := 0; k < n; k++ {
		lo, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		hi, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		prevLo ^= lo
		prevHi ^= hi
		s.superLo = append(s.superLo, prevLo)
		s.superHi = append(s.superHi, prevHi)
	}
	s.quadrant = make([]int8, 0, minInt(n, 1<<20))
	for k := 0; k < n; k++ {
		b, err := d.byte()
		if err != nil {
			return nil, err
		}
		s.quadrant = append(s.quadrant, int8(b))
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("super: %w", err)
	}

	// Referential integrity, mirroring loadPayload: a corrupt-but-
	// checksummed file must not produce a store that panics later.
	for k := 0; k < n; k++ {
		if int(s.valIdx[k]) >= len(s.dict) {
			return nil, fmt.Errorf("entry %d references value %d outside dictionary", k, s.valIdx[k])
		}
		tid := s.tableIDs[k]
		if int(tid) >= len(s.tables) {
			return nil, fmt.Errorf("entry %d references table %d outside catalog", k, tid)
		}
		meta := &s.tables[tid]
		if int(s.columnIDs[k]) >= len(meta.ColNames) {
			return nil, fmt.Errorf("entry %d references column %d outside table %q", k, s.columnIDs[k], meta.Name)
		}
		if s.rowIDs[k] >= meta.NumRows {
			return nil, fmt.Errorf("entry %d references row %d outside table %q", k, s.rowIDs[k], meta.Name)
		}
	}

	d = &segDecoder{b: sf.section(info.secs[secRanges])}
	nr, err := d.count("table range")
	if err != nil {
		return nil, err
	}
	if nr != numTables {
		return nil, fmt.Errorf("ranges section holds %d tables, catalog %d", nr, numTables)
	}
	s.tableRange = make([][2]int32, 0, minInt(nr, 1<<16))
	for t := 0; t < nr; t++ {
		start, err := d.count("range start")
		if err != nil {
			return nil, err
		}
		length, err := d.count("range length")
		if err != nil {
			return nil, err
		}
		if start+length > n {
			return nil, fmt.Errorf("table %d range [%d,+%d) outside %d entries", t, start, length, n)
		}
		s.tableRange = append(s.tableRange, [2]int32{int32(start), int32(start + length)})
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("ranges: %w", err)
	}

	s.dead = make([]bool, len(s.tables))
	copy(s.dead, info.dead)
	s.numDead = info.numDead

	s.rebuildPostings()
	if s.layout == RowStore {
		s.packRows()
	}
	return s, nil
}

// eagerIndex fully decodes every shard, matching the concrete-type
// contract of the legacy loaders: *Store for monolithic files,
// *ShardedStore for sharded ones.
func (sf *segFile) eagerIndex() (Index, error) {
	shards := make([]*Store, len(sf.shards))
	for i := range shards {
		sh, err := sf.materializeShard(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards[i] = sh
	}
	if sf.kind == persistKindMonolithic {
		return shards[0], nil
	}
	s := &ShardedStore{
		layout:    sf.layout,
		shards:    shards,
		refs:      sf.refs,
		globalTID: sf.globalTID,
	}
	s.recomputeBase()
	return s, nil
}

// lazyIndex wraps the mapped file in a ShardedStore whose shards decode on
// first touch. Monolithic files become a single-shard store that remembers
// its kind, so Save round-trips it back as monolithic.
func (sf *segFile) lazyIndex() *ShardedStore {
	slots := make([]*shardSlot, len(sf.shards))
	for i := range slots {
		slots[i] = new(shardSlot)
	}
	s := &ShardedStore{
		layout:    sf.layout,
		shards:    make([]*Store, len(sf.shards)),
		refs:      sf.refs,
		globalTID: sf.globalTID,
		seg:       sf,
		slots:     slots,
		mono:      sf.kind == persistKindMonolithic,
	}
	s.recomputeBase()
	return s
}

// loadSegmented is the eager v4 path used by Load/LoadFile: decode
// everything up front from an in-memory copy of the file.
func loadSegmented(data []byte) (Index, error) {
	sf, err := parseSegFile(data)
	if err != nil {
		return nil, err
	}
	return sf.eagerIndex()
}
