package storage

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"blend/internal/berr"
	"blend/internal/table"
	"blend/internal/xash"
)

// ShardedStore hash-partitions the AllTables relation across N shards, one
// monolithic Store per shard, each with its own dictionary, inverted index,
// and table-range index. Tables are assigned whole to a shard by a hash of
// their name, so every per-table aggregate the seekers' SQL computes
// (GROUP BY TableId, joins on TableId/RowId) is shard-local and the engine
// can execute a seeker against every shard concurrently and merge top-k.
//
// The ShardedStore itself presents the unified global view: entry positions
// are globally contiguous (shard s occupies [base[s], base[s+1])) and table
// ids are assigned in insertion order across the whole lake, exactly like a
// monolithic Store, so raw SQL and every Reader consumer behave
// identically regardless of partitioning.
type ShardedStore struct {
	layout Layout
	shards []*Store

	// refs maps global table id -> owning shard and shard-local table id.
	refs []shardRef
	// globalTID maps, per shard, local table id -> global table id.
	globalTID [][]int32
	// base[s] is the global entry offset of shard s; base has one extra
	// trailing element holding the total entry count.
	base []int32

	// seg/slots back a lazily mapped v4 index (MapFile): shards[i] stays
	// nil until first touch, when slots[i] materializes it from the
	// mapped segments. Both are nil for heap-built stores. Slots are
	// pointers and shared across copy-on-write clones (see cow.go), so a
	// shard materialized through any generation becomes resident for all
	// of them; a clone that mutates shard i overrides it by setting
	// shards[i], which always wins over the slot. mono records that the
	// file was written as monolithic, so Save preserves the kind. See
	// shard().
	seg   *segFile
	slots []*shardSlot
	mono  bool
}

// shardSlot guards one shard's lazy materialization.
type shardSlot struct {
	once sync.Once
	done atomic.Bool
	st   *Store // the materialized shard; written inside Do
	err  error  // guarded by once: written inside Do, read after it returns
}

// shard returns shard i, materializing it from the mapped file on first
// touch. Reads from concurrent goroutines are safe: sync.Once publishes
// the decoded store. A shard that fails its checksum or integrity checks
// panics with a typed bad-index error — the Reader interface has no error
// returns, and a section whose CRC no longer matches means the file was
// corrupted underneath a running process, which is not a state to limp
// through. Structural problems (bad footer, bad offsets) are caught
// eagerly by MapFile instead.
func (s *ShardedStore) shard(i int) *Store {
	if st := s.shards[i]; st != nil {
		return st
	}
	sl := s.slots[i]
	sl.once.Do(func() {
		st, err := s.seg.materializeShard(i)
		if err != nil {
			sl.err = err
			return
		}
		sl.st = st
		sl.done.Store(true)
	})
	if sl.err != nil {
		panic(berr.New(berr.CodeBadIndex, "storage.mmap", "shard %d: %v", i, sl.err))
	}
	return sl.st
}

// residentShard returns shard i only if it is already heap-resident, nil
// otherwise. Stats and size accounting use it to avoid forcing
// materialization.
func (s *ShardedStore) residentShard(i int) *Store {
	if st := s.shards[i]; st != nil {
		return st
	}
	if s.slots == nil {
		return nil
	}
	if sl := s.slots[i]; sl.done.Load() {
		return sl.st
	}
	return nil
}

// shardEntries reports shard i's entry count without materializing it
// (the v4 footer stores per-shard counts).
func (s *ShardedStore) shardEntries(i int) int {
	if sh := s.residentShard(i); sh != nil {
		return sh.NumEntries()
	}
	return s.seg.shards[i].entries
}

// ResidentShards counts the shards currently materialized on the heap;
// equal to NumShards for eagerly loaded or built stores.
func (s *ShardedStore) ResidentShards() int {
	if s.slots == nil {
		return len(s.shards)
	}
	n := 0
	for i := range s.slots {
		if s.shards[i] != nil || s.slots[i].done.Load() {
			n++
		}
	}
	return n
}

// MappedBytes reports the size of the memory-mapped file backing this
// store, 0 when heap-built or eagerly loaded.
func (s *ShardedStore) MappedBytes() int64 {
	if s.seg == nil {
		return 0
	}
	return int64(len(s.seg.data))
}

// Close releases the memory mapping of a store opened with MapFile; a
// no-op otherwise. Callers must not touch unmaterialized shards after
// Close (already-materialized shards are heap copies and stay valid).
func (s *ShardedStore) Close() error {
	if s.seg == nil {
		return nil
	}
	return s.seg.close()
}

type shardRef struct {
	shard int32
	local int32
}

// MaxShards caps the partition count, so every index BuildSharded can
// produce is also one Load accepts (the loader rejects counts above this
// as corruption).
const MaxShards = 1 << 12

// BuildSharded indexes the tables into n hash-partitioned shards. n is
// clamped to [1, MaxShards]; a single shard still goes through the sharded
// code path (useful for tests) — use Build for a plain monolithic store.
func BuildSharded(layout Layout, tables []*table.Table, n int) *ShardedStore {
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	s := &ShardedStore{
		layout:    layout,
		shards:    make([]*Store, n),
		globalTID: make([][]int32, n),
	}
	builders := make([]*Builder, n)
	for i := range builders {
		builders[i] = NewBuilder(layout)
	}
	for _, t := range tables {
		sh := s.shardFor(t.Name)
		local := builders[sh].Add(t)
		s.refs = append(s.refs, shardRef{shard: int32(sh), local: local})
		s.globalTID[sh] = append(s.globalTID[sh], int32(len(s.refs)-1))
	}
	for i, b := range builders {
		s.shards[i] = b.Finish()
	}
	s.recomputeBase()
	return s
}

// shardFor picks the shard owning a table name (FNV-1a modulo shard count).
func (s *ShardedStore) shardFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// recomputeBase refreshes the global entry offsets after shard growth.
// Lazy shards contribute their footer-recorded counts, so the global
// positions are exact without materializing anything.
func (s *ShardedStore) recomputeBase() {
	s.base = make([]int32, len(s.shards)+1)
	for i := range s.shards {
		s.base[i+1] = s.base[i] + int32(s.shardEntries(i))
	}
}

// locate maps a global entry position to (shard, local position).
func (s *ShardedStore) locate(i int32) (int, int32) {
	// sort.Search finds the first shard whose range ends beyond i.
	sh := sort.Search(len(s.shards), func(k int) bool { return s.base[k+1] > i })
	return sh, i - s.base[sh]
}

// Layout reports the physical layout shared by every shard.
func (s *ShardedStore) Layout() Layout { return s.layout }

// NumShards reports the partition count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// NumEntries reports the total AllTables tuples across shards.
func (s *ShardedStore) NumEntries() int { return int(s.base[len(s.shards)]) }

// NumTables reports the number of indexed tables across shards.
func (s *ShardedStore) NumTables() int { return len(s.refs) }

// NumDistinctValues reports the number of distinct cell values across the
// whole lake. Dictionaries are per-shard, so this deduplicates across them;
// it is an O(dictionary) scan meant for stats, not hot paths.
func (s *ShardedStore) NumDistinctValues() int {
	if len(s.shards) == 1 {
		return s.shard(0).NumDistinctValues()
	}
	seen := make(map[string]struct{})
	for i := range s.shards {
		for _, v := range s.shard(i).dict {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// TableMeta returns catalog information for a global table id.
func (s *ShardedStore) TableMeta(tid int32) TableMeta {
	r := s.refs[tid]
	return s.shard(int(r.shard)).TableMeta(r.local)
}

// TableName returns the name of a global table id, or "" if out of range
// or tombstoned.
func (s *ShardedStore) TableName(tid int32) string {
	if !s.TableAlive(tid) {
		return ""
	}
	return s.TableMeta(tid).Name
}

// TableIDByName returns the global id of the named live table, or -1.
// Tables are assigned whole to the shard hashing their name, so only that
// shard needs to be consulted (and, when lazy, materialized).
func (s *ShardedStore) TableIDByName(name string) int32 {
	sh := s.shardFor(name)
	local := s.shard(sh).TableIDByName(name)
	if local < 0 {
		return -1
	}
	return s.globalTID[sh][local]
}

// TableAlive reports whether a global table id is allocated and not
// tombstoned. Tombstone bitmaps are decoded at open, so this never
// materializes a shard.
func (s *ShardedStore) TableAlive(tid int32) bool {
	if tid < 0 || int(tid) >= len(s.refs) {
		return false
	}
	r := s.refs[tid]
	if sh := s.residentShard(int(r.shard)); sh != nil {
		return sh.TableAlive(r.local)
	}
	return !s.seg.shards[r.shard].dead[r.local]
}

// Tombstones sums the removed-but-not-compacted tables across shards,
// using the footer counts for shards not yet materialized.
func (s *ShardedStore) Tombstones() int {
	n := 0
	for i := range s.shards {
		if sh := s.residentShard(i); sh != nil {
			n += sh.Tombstones()
		} else {
			n += s.seg.shards[i].numDead
		}
	}
	return n
}

// Value returns the CellValue of global entry i.
func (s *ShardedStore) Value(i int32) string {
	sh, l := s.locate(i)
	return s.shard(sh).Value(l)
}

// TableID returns the global TableId of entry i.
func (s *ShardedStore) TableID(i int32) int32 {
	sh, l := s.locate(i)
	return s.globalTID[sh][s.shard(sh).TableID(l)]
}

// ColumnID returns the ColumnId of global entry i.
func (s *ShardedStore) ColumnID(i int32) int32 {
	sh, l := s.locate(i)
	return s.shard(sh).ColumnID(l)
}

// RowID returns the RowId of global entry i.
func (s *ShardedStore) RowID(i int32) int32 {
	sh, l := s.locate(i)
	return s.shard(sh).RowID(l)
}

// SuperKey returns the XASH super key of global entry i's row.
func (s *ShardedStore) SuperKey(i int32) xash.Key {
	sh, l := s.locate(i)
	return s.shard(sh).SuperKey(l)
}

// Quadrant returns the quadrant bit of global entry i.
func (s *ShardedStore) Quadrant(i int32) int8 {
	sh, l := s.locate(i)
	return s.shard(sh).Quadrant(l)
}

// Postings returns the global entry positions whose CellValue equals v,
// merged across shards in ascending position order. Unlike Store.Postings
// the slice is freshly allocated per call (per-shard postings cannot be
// shared globally); Frequency avoids the allocation when only the count is
// needed.
func (s *ShardedStore) Postings(v string) []int32 {
	if len(s.shards) == 1 {
		return s.shard(0).Postings(v)
	}
	n := s.Frequency(v)
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for si := range s.shards {
		for _, p := range s.shard(si).Postings(v) {
			out = append(out, p+s.base[si])
		}
	}
	return out
}

// ScanPostings streams the entries holding value v across all shards in
// shard order, reporting global table ids.
func (s *ShardedStore) ScanPostings(v string, fn func(tid, cid, rid int32)) {
	for si := range s.shards {
		g := s.globalTID[si]
		s.shard(si).ScanPostings(v, func(tid, cid, rid int32) { fn(g[tid], cid, rid) })
	}
}

// ScanPostingsSuper streams the entries holding value v, with their row
// super keys, across all shards in shard order, reporting global table ids.
func (s *ShardedStore) ScanPostingsSuper(v string, fn func(tid, cid, rid int32, super xash.Key)) {
	for si := range s.shards {
		g := s.globalTID[si]
		s.shard(si).ScanPostingsSuper(v, func(tid, cid, rid int32, super xash.Key) {
			fn(g[tid], cid, rid, super)
		})
	}
}

// ScanTableNumeric streams the numeric cells of global table tid with
// RowId < maxRow. Tables live whole on one shard, so the call delegates to
// the owning shard with the local id.
func (s *ShardedStore) ScanTableNumeric(tid, maxRow int32, fn func(cid, rid int32, q int8)) {
	if tid < 0 || int(tid) >= len(s.refs) {
		return
	}
	r := s.refs[tid]
	s.shard(int(r.shard)).ScanTableNumeric(r.local, maxRow, fn)
}

// Frequency returns the number of index entries holding value v.
func (s *ShardedStore) Frequency(v string) int {
	total := 0
	for i := range s.shards {
		total += s.shard(i).Frequency(v)
	}
	return total
}

// AvgFrequency returns the mean index frequency of the given values.
func (s *ShardedStore) AvgFrequency(values []string) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0
	for _, v := range values {
		total += s.Frequency(v)
	}
	return float64(total) / float64(len(values))
}

// TableEntries returns the global [start, end) entry range of a table id.
func (s *ShardedStore) TableEntries(tid int32) (start, end int32) {
	r := s.refs[tid]
	lo, hi := s.shard(int(r.shard)).TableEntries(r.local)
	return lo + s.base[r.shard], hi + s.base[r.shard]
}

// ReconstructRow materializes row rid of global table tid.
func (s *ShardedStore) ReconstructRow(tid, rid int32) []string {
	r := s.refs[tid]
	return s.shard(int(r.shard)).ReconstructRow(r.local, rid)
}

// ReconstructTable materializes a full table from the index.
func (s *ShardedStore) ReconstructTable(tid int32) *table.Table {
	r := s.refs[tid]
	return s.shard(int(r.shard)).ReconstructTable(r.local)
}

// SizeBytes sums the heap sizes of the resident shards. On a lazily
// mapped store this is the resident footprint only — the mapped file is
// reported separately by MappedBytes — so the sum never forces
// materialization.
func (s *ShardedStore) SizeBytes() int64 {
	var b int64
	for i := range s.shards {
		if sh := s.residentShard(i); sh != nil {
			b += sh.SizeBytes()
		}
	}
	return b
}

// ComputeStats aggregates per-shard stats into one lake summary. The
// posting-length figures are computed over per-shard dictionaries (a value
// split across shards counts once per shard), which is what the scan cost
// of a sharded seeker actually depends on.
//
// On a lazily mapped store the shape figures (tables, entries, tombstones,
// shards) are exact — they come from the footer — but the content scans
// (dictionary, postings, numeric cells, per-table averages) cover only the
// shards already materialized, so that a stats probe of a mapped serving
// process does not drag the whole index onto the heap. ResidentShards and
// MappedBytes make the coverage explicit.
func (s *ShardedStore) ComputeStats() Stats {
	st := Stats{
		Layout:         s.layout,
		Shards:         len(s.shards),
		Tables:         s.NumTables() - s.Tombstones(),
		Tombstones:     s.Tombstones(),
		Entries:        s.NumEntries(),
		EstimatedBytes: s.SizeBytes(),
		ResidentShards: s.ResidentShards(),
		MappedBytes:    s.MappedBytes(),
	}
	if st.ResidentShards == len(s.shards) {
		st.DistinctValues = s.NumDistinctValues()
	} else {
		seen := make(map[string]struct{})
		for i := range s.shards {
			if sh := s.residentShard(i); sh != nil {
				for _, v := range sh.dict {
					seen[v] = struct{}{}
				}
			}
		}
		st.DistinctValues = len(seen)
	}
	totalPost, dictEntries := 0, 0
	var cols, rows, liveTables int
	for i := range s.shards {
		sh := s.residentShard(i)
		if sh == nil {
			continue
		}
		sub := sh.ComputeStats()
		st.NumericCells += sub.NumericCells
		st.DictBytes += sub.DictBytes
		if sub.MaxPostingLength > st.MaxPostingLength {
			st.MaxPostingLength = sub.MaxPostingLength
		}
		totalPost += sub.Entries
		dictEntries += sub.DistinctValues
		for tid := range sh.tables {
			if sh.dead[tid] {
				continue
			}
			liveTables++
			cols += len(sh.tables[tid].ColNames)
			rows += int(sh.tables[tid].NumRows)
		}
	}
	if dictEntries > 0 {
		st.AvgPostingLength = float64(totalPost) / float64(dictEntries)
	}
	if liveTables > 0 {
		st.AvgColumnsPerTbl = float64(cols) / float64(liveTables)
		st.AvgRowsPerTable = float64(rows) / float64(liveTables)
	}
	return st
}

// AddTable appends one table, routing it to its hash shard. The returned
// table id is global and insertion-ordered, exactly like Store.AddTable.
// Not safe for use concurrent with readers.
func (s *ShardedStore) AddTable(t *table.Table) int32 {
	sh := s.shardFor(t.Name)
	local := s.shard(sh).AddTable(t)
	g := int32(len(s.refs))
	s.refs = append(s.refs, shardRef{shard: int32(sh), local: local})
	s.globalTID[sh] = append(s.globalTID[sh], g)
	s.recomputeBase()
	return g
}

// AddTablesBatch appends a batch of tables, assigning global ids in input
// order, and applies the per-shard inserts concurrently — the write-path
// counterpart of the per-shard read fan-out. Tables are grouped by their
// hash shard first; each shard's group is then appended by one goroutine
// (dictionaries and postings are shard-local, so the appends share no
// state), bounded by workers (<= 0 means GOMAXPROCS). The global directory
// and entry offsets are refreshed once for the whole batch. Not safe for
// use concurrent with readers.
func (s *ShardedStore) AddTablesBatch(tables []*table.Table, workers int) []int32 {
	if len(tables) == 0 {
		return nil
	}
	ids := make([]int32, len(tables))
	perShard := make([][]*table.Table, len(s.shards))
	for i, t := range tables {
		sh := s.shardFor(t.Name)
		g := int32(len(s.refs))
		ids[i] = g
		local := int32(s.shard(sh).NumTables() + len(perShard[sh]))
		s.refs = append(s.refs, shardRef{shard: int32(sh), local: local})
		s.globalTID[sh] = append(s.globalTID[sh], g)
		perShard[sh] = append(perShard[sh], t)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for sh, group := range perShard {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, group []*table.Table) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.shard(sh).AddTablesBatch(group, 1)
		}(sh, group)
	}
	wg.Wait()
	s.recomputeBase()
	return ids
}

// RemoveTable tombstones one global table id; see Store.RemoveTable for
// the semantics. Not safe for use concurrent with readers.
func (s *ShardedStore) RemoveTable(tid int32) error {
	if tid < 0 || int(tid) >= len(s.refs) {
		return berr.New(berr.CodeNotFound, "storage.remove", "no table with id %d", tid)
	}
	r := s.refs[tid]
	return s.shard(int(r.shard)).RemoveTable(r.local)
}

// Compact physically reclaims tombstoned tables by rebuilding the lake
// from its live tables, preserving the shard count and the relative order
// of global ids (which are reassigned contiguously). Returns how many
// tables were removed; a lake without tombstones is left untouched. Not
// safe for use concurrent with readers.
func (s *ShardedStore) Compact() int {
	removed := s.Tombstones()
	if removed == 0 {
		return 0
	}
	live := make([]*table.Table, 0, len(s.refs)-removed)
	for g := range s.refs {
		r := s.refs[g]
		if sh := s.shard(int(r.shard)); sh.TableAlive(r.local) {
			live = append(live, sh.reconstructTable(r.local))
		}
	}
	old := s.seg
	*s = *BuildSharded(s.layout, live, len(s.shards))
	if old != nil {
		// The rebuilt lake is fully heap-resident (reconstruction copies
		// every cell), so the mapping can be released.
		old.close()
	}
	return removed
}

// ShardReaders implements Sharded: one per-shard view exposing global table
// ids over shard-local entry positions, for the engine's concurrent SQL
// fan-out.
func (s *ShardedStore) ShardReaders() []Reader {
	out := make([]Reader, len(s.shards))
	for i := range s.shards {
		out[i] = &shardView{parent: s, shard: i}
	}
	return out
}

// shardView is one shard of a ShardedStore viewed as a standalone Reader.
// Entry positions are local to the shard (the relation the SQL engine scans
// is just that shard), but table ids are global so GROUP BY TableId output
// and TableId IN (…) rewrite predicates compose across shards. TableEntries
// of a table owned by another shard is empty, which makes TableId lookups
// against foreign tables match nothing — precisely the partition semantics
// the merge step relies on.
type shardView struct {
	parent *ShardedStore
	shard  int
}

func (v *shardView) store() *Store { return v.parent.shard(v.shard) }

// Layout reports the shard's physical layout.
func (v *shardView) Layout() Layout { return v.parent.layout }

// NumShards reports 1: a view is a single partition.
func (v *shardView) NumShards() int { return 1 }

// NumEntries reports the shard-local tuple count.
func (v *shardView) NumEntries() int { return v.store().NumEntries() }

// NumTables reports the global table count, so global table ids stay in
// range for bounds checks at the SQL layer.
func (v *shardView) NumTables() int { return v.parent.NumTables() }

// NumDistinctValues reports the shard's dictionary size.
func (v *shardView) NumDistinctValues() int { return v.store().NumDistinctValues() }

// TableMeta delegates to the global catalog.
func (v *shardView) TableMeta(tid int32) TableMeta { return v.parent.TableMeta(tid) }

// TableName delegates to the global catalog.
func (v *shardView) TableName(tid int32) string { return v.parent.TableName(tid) }

// TableIDByName delegates to the global catalog.
func (v *shardView) TableIDByName(name string) int32 { return v.parent.TableIDByName(name) }

// TableAlive delegates to the global catalog.
func (v *shardView) TableAlive(tid int32) bool { return v.parent.TableAlive(tid) }

// Tombstones reports the shard-local tombstone count.
func (v *shardView) Tombstones() int { return v.store().Tombstones() }

// Value returns the CellValue of shard-local entry i.
func (v *shardView) Value(i int32) string { return v.store().Value(i) }

// TableID returns the global TableId of shard-local entry i.
func (v *shardView) TableID(i int32) int32 {
	return v.parent.globalTID[v.shard][v.store().TableID(i)]
}

// ColumnID returns the ColumnId of shard-local entry i.
func (v *shardView) ColumnID(i int32) int32 { return v.store().ColumnID(i) }

// RowID returns the RowId of shard-local entry i.
func (v *shardView) RowID(i int32) int32 { return v.store().RowID(i) }

// SuperKey returns the super key of shard-local entry i.
func (v *shardView) SuperKey(i int32) xash.Key { return v.store().SuperKey(i) }

// Quadrant returns the quadrant bit of shard-local entry i.
func (v *shardView) Quadrant(i int32) int8 { return v.store().Quadrant(i) }

// Postings returns shard-local entry positions for value v.
func (v *shardView) Postings(val string) []int32 { return v.store().Postings(val) }

// ScanPostings streams the shard's entries holding value val, reporting
// global table ids so per-shard native scans merge like per-shard SQL.
func (v *shardView) ScanPostings(val string, fn func(tid, cid, rid int32)) {
	g := v.parent.globalTID[v.shard]
	v.store().ScanPostings(val, func(tid, cid, rid int32) { fn(g[tid], cid, rid) })
}

// ScanPostingsSuper streams the shard's entries holding value val with
// their row super keys, reporting global table ids.
func (v *shardView) ScanPostingsSuper(val string, fn func(tid, cid, rid int32, super xash.Key)) {
	g := v.parent.globalTID[v.shard]
	v.store().ScanPostingsSuper(val, func(tid, cid, rid int32, super xash.Key) {
		fn(g[tid], cid, rid, super)
	})
}

// ScanTableNumeric streams the numeric cells of a global table id with
// RowId < maxRow; a table owned by another shard streams nothing, matching
// the view's empty TableEntries range for foreign tables.
func (v *shardView) ScanTableNumeric(tid, maxRow int32, fn func(cid, rid int32, q int8)) {
	if tid < 0 || int(tid) >= len(v.parent.refs) {
		return
	}
	r := v.parent.refs[tid]
	if int(r.shard) != v.shard {
		return
	}
	v.store().ScanTableNumeric(r.local, maxRow, fn)
}

// Frequency returns the shard-local frequency of value v.
func (v *shardView) Frequency(val string) int { return v.store().Frequency(val) }

// AvgFrequency returns the shard-local mean frequency.
func (v *shardView) AvgFrequency(values []string) float64 { return v.store().AvgFrequency(values) }

// TableEntries maps a global table id to the shard-local entry range; a
// table owned by another shard yields the empty range.
func (v *shardView) TableEntries(tid int32) (start, end int32) {
	if tid < 0 || int(tid) >= len(v.parent.refs) {
		return 0, 0
	}
	r := v.parent.refs[tid]
	if int(r.shard) != v.shard {
		return 0, 0
	}
	return v.store().TableEntries(r.local)
}

// ReconstructRow materializes a row of a global table id.
func (v *shardView) ReconstructRow(tid, rid int32) []string { return v.parent.ReconstructRow(tid, rid) }

// ReconstructTable materializes a global table id.
func (v *shardView) ReconstructTable(tid int32) *table.Table { return v.parent.ReconstructTable(tid) }

// SizeBytes reports the shard's resident size.
func (v *shardView) SizeBytes() int64 { return v.store().SizeBytes() }

// ComputeStats summarizes the single shard.
func (v *shardView) ComputeStats() Stats { return v.store().ComputeStats() }

// String identifies the view in diagnostics.
func (v *shardView) String() string {
	return fmt.Sprintf("shard %d/%d", v.shard, len(v.parent.shards))
}
