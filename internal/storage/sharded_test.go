package storage

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"blend/internal/table"
)

// widerLake extends the Fig. 1 fixture with enough tables that a 4-way
// hash partition actually spreads.
func widerLake() []*table.Table {
	tables := lakeFixture()
	for i := 0; i < 8; i++ {
		t := table.New(fmt.Sprintf("W%d", i), "Team", "Metric")
		t.MustAppendRow("HR", fmt.Sprintf("%d", 10+i))
		t.MustAppendRow(fmt.Sprintf("Unit%d", i), fmt.Sprintf("%d", 20+i))
		t.MustAppendRow("Firenze", fmt.Sprintf("%d", 30+i))
		t.InferKinds()
		tables = append(tables, t)
	}
	return tables
}

// entryTuple is the location-independent content of one index entry.
type entryTuple struct {
	val      string
	tid, cid int32
	rid      int32
	lo, hi   uint64
	q        int8
}

// tableTuples decodes a table's entries through any Reader, sorted.
func tableTuples(r Reader, tid int32) []entryTuple {
	start, end := r.TableEntries(tid)
	out := make([]entryTuple, 0, end-start)
	for i := start; i < end; i++ {
		k := r.SuperKey(i)
		out = append(out, entryTuple{
			val: r.Value(i), tid: r.TableID(i), cid: r.ColumnID(i),
			rid: r.RowID(i), lo: k.Lo, hi: k.Hi, q: r.Quadrant(i),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].rid != out[b].rid {
			return out[a].rid < out[b].rid
		}
		return out[a].cid < out[b].cid
	})
	return out
}

func TestShardedMatchesMonolithic(t *testing.T) {
	tables := widerLake()
	for _, layout := range []Layout{ColumnStore, RowStore} {
		mono := Build(layout, tables)
		shard := BuildSharded(layout, tables, 4)
		if shard.NumShards() != 4 {
			t.Fatalf("NumShards = %d", shard.NumShards())
		}
		if shard.NumEntries() != mono.NumEntries() {
			t.Fatalf("layout %v: entries %d != %d", layout, shard.NumEntries(), mono.NumEntries())
		}
		if shard.NumTables() != mono.NumTables() {
			t.Fatalf("layout %v: tables differ", layout)
		}
		if shard.NumDistinctValues() != mono.NumDistinctValues() {
			t.Fatalf("layout %v: distinct values %d != %d",
				layout, shard.NumDistinctValues(), mono.NumDistinctValues())
		}
		for tid := int32(0); tid < int32(mono.NumTables()); tid++ {
			if shard.TableName(tid) != mono.TableName(tid) {
				t.Fatalf("layout %v: table %d name %q != %q",
					layout, tid, shard.TableName(tid), mono.TableName(tid))
			}
			if !reflect.DeepEqual(tableTuples(shard, tid), tableTuples(mono, tid)) {
				t.Fatalf("layout %v: table %d entries differ", layout, tid)
			}
			mt := mono.ReconstructTable(tid)
			st := shard.ReconstructTable(tid)
			if !reflect.DeepEqual(mt.Rows, st.Rows) {
				t.Fatalf("layout %v: table %d reconstruction differs", layout, tid)
			}
		}
		for _, name := range []string{"T1", "W3", "nope"} {
			if shard.TableIDByName(name) != mono.TableIDByName(name) {
				t.Fatalf("layout %v: TableIDByName(%q) differs", layout, name)
			}
		}
		for _, v := range []string{"HR", "Firenze", "Unit3", "missing"} {
			if shard.Frequency(v) != mono.Frequency(v) {
				t.Fatalf("layout %v: Frequency(%q) %d != %d",
					layout, v, shard.Frequency(v), mono.Frequency(v))
			}
			// Postings positions differ (global layouts differ) but must
			// decode to the same cell locations.
			decode := func(r Reader, ps []int32) []entryTuple {
				out := make([]entryTuple, 0, len(ps))
				for _, p := range ps {
					out = append(out, entryTuple{
						val: r.Value(p), tid: r.TableID(p),
						cid: r.ColumnID(p), rid: r.RowID(p),
					})
				}
				sort.Slice(out, func(a, b int) bool {
					if out[a].tid != out[b].tid {
						return out[a].tid < out[b].tid
					}
					if out[a].rid != out[b].rid {
						return out[a].rid < out[b].rid
					}
					return out[a].cid < out[b].cid
				})
				return out
			}
			if !reflect.DeepEqual(decode(shard, shard.Postings(v)), decode(mono, mono.Postings(v))) {
				t.Fatalf("layout %v: Postings(%q) decode differently", layout, v)
			}
		}
		if got, want := shard.AvgFrequency([]string{"HR", "Firenze"}), mono.AvgFrequency([]string{"HR", "Firenze"}); got != want {
			t.Fatalf("layout %v: AvgFrequency %v != %v", layout, got, want)
		}
	}
}

func TestShardedGlobalPositionsConsistent(t *testing.T) {
	s := BuildSharded(ColumnStore, widerLake(), 4)
	// Every global position must belong to exactly the table whose range
	// contains it, and postings must be sorted ascending.
	for tid := int32(0); tid < int32(s.NumTables()); tid++ {
		start, end := s.TableEntries(tid)
		for i := start; i < end; i++ {
			if s.TableID(i) != tid {
				t.Fatalf("entry %d in range of table %d reports table %d", i, tid, s.TableID(i))
			}
		}
	}
	p := s.Postings("HR")
	if !sort.SliceIsSorted(p, func(a, b int) bool { return p[a] < p[b] }) {
		t.Fatal("merged postings not sorted")
	}
}

func TestShardReaderViews(t *testing.T) {
	s := BuildSharded(ColumnStore, widerLake(), 4)
	views := s.ShardReaders()
	if len(views) != 4 {
		t.Fatalf("views = %d", len(views))
	}
	totalEntries, totalFreq := 0, 0
	for _, v := range views {
		totalEntries += v.NumEntries()
		totalFreq += v.Frequency("HR")
		if v.NumTables() != s.NumTables() {
			t.Fatal("view must report the global table count")
		}
		// Every entry's TableID must be global: its global range must
		// belong to a table whose name matches.
		for i := int32(0); i < int32(v.NumEntries()); i++ {
			tid := v.TableID(i)
			if tid < 0 || int(tid) >= s.NumTables() {
				t.Fatalf("view reports out-of-range global table id %d", tid)
			}
		}
	}
	if totalEntries != s.NumEntries() {
		t.Fatalf("views hold %d entries, store %d", totalEntries, s.NumEntries())
	}
	if totalFreq != s.Frequency("HR") {
		t.Fatal("per-shard frequencies must sum to the global frequency")
	}
	// A table's entries live in exactly one view.
	for tid := int32(0); tid < int32(s.NumTables()); tid++ {
		owners := 0
		for _, v := range views {
			if lo, hi := v.TableEntries(tid); hi > lo {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("table %d owned by %d shards", tid, owners)
		}
	}
}

func TestShardedPersistRoundTrip(t *testing.T) {
	for _, layout := range []Layout{ColumnStore, RowStore} {
		orig := BuildSharded(layout, widerLake(), 3)
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		back, ok := loaded.(*ShardedStore)
		if !ok {
			t.Fatalf("v2 file loaded as %T", loaded)
		}
		if back.NumShards() != 3 {
			t.Fatalf("shard count = %d after round trip", back.NumShards())
		}
		if back.Layout() != layout || back.NumEntries() != orig.NumEntries() {
			t.Fatal("shape lost on round trip")
		}
		for tid := int32(0); tid < int32(orig.NumTables()); tid++ {
			if !reflect.DeepEqual(tableTuples(back, tid), tableTuples(orig, tid)) {
				t.Fatalf("layout %v: table %d differs after round trip", layout, tid)
			}
		}
		// Incremental maintenance after load: same hash routing, same
		// global ids.
		nt := table.New("postload", "A", "B")
		nt.MustAppendRow("zz-postload", "1")
		nt.InferKinds()
		id1 := orig.AddTable(nt)
		id2 := back.AddTable(nt)
		if id1 != id2 {
			t.Fatalf("AddTable after load assigned id %d, fresh store %d", id2, id1)
		}
		if back.Frequency("zz-postload") != 1 {
			t.Fatal("value added after load not indexed")
		}
		if !reflect.DeepEqual(tableTuples(back, id2), tableTuples(orig, id1)) {
			t.Fatal("post-load AddTable produced different entries")
		}
	}
}

func TestV1FilesStillLoadAsMonolithic(t *testing.T) {
	orig := Build(ColumnStore, lakeFixture())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.(*Store); !ok {
		t.Fatalf("v1 file loaded as %T, want *Store", loaded)
	}
	if loaded.NumShards() != 1 {
		t.Fatal("monolithic store must report one shard")
	}
}

func TestLoadShardedRejectsBadDirectory(t *testing.T) {
	orig := BuildSharded(ColumnStore, lakeFixture(), 2)
	var buf bytes.Buffer
	if err := orig.SaveLegacy(&buf, 3); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// v3 byte layout: magic(4) version(4) kind(1) layout(4) shards(4)
	// tables(4) then the first table's shard assignment — point it out of
	// range.
	raw[21] = 0xee
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt shard directory must be rejected")
	}
}

func TestShardedComputeStats(t *testing.T) {
	s := BuildSharded(ColumnStore, widerLake(), 4)
	st := s.ComputeStats()
	if st.Shards != 4 {
		t.Fatalf("stats shards = %d", st.Shards)
	}
	if st.Tables != s.NumTables() || st.Entries != s.NumEntries() {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.DistinctValues != s.NumDistinctValues() {
		t.Fatal("distinct count mismatch")
	}
	if st.NumericCells == 0 || st.AvgPostingLength <= 0 {
		t.Fatalf("stats content: %+v", st)
	}
	mono := Build(ColumnStore, widerLake()).ComputeStats()
	if st.NumericCells != mono.NumericCells {
		t.Fatal("numeric cell count must not depend on partitioning")
	}
	if st.AvgColumnsPerTbl != mono.AvgColumnsPerTbl || st.AvgRowsPerTable != mono.AvgRowsPerTable {
		t.Fatal("table shape averages must not depend on partitioning")
	}
}

// TestBuildShardedClampsShardCount guards the Save/Load agreement: any
// shard count BuildSharded accepts must survive a round trip.
func TestBuildShardedClampsShardCount(t *testing.T) {
	s := BuildSharded(ColumnStore, lakeFixture(), MaxShards+100)
	if s.NumShards() != MaxShards {
		t.Fatalf("NumShards = %d, want clamp to %d", s.NumShards(), MaxShards)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("index built at the cap failed to reload: %v", err)
	}
	if back.NumShards() != MaxShards {
		t.Fatal("shard count lost on round trip")
	}
}
