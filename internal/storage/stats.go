package storage

// Stats summarizes an index for operators and the CLI's stats subcommand:
// the shape of the lake, dictionary compression, posting-list skew (the
// quantity seeker runtimes scale with), and quadrant coverage.
type Stats struct {
	Layout           Layout
	Shards           int // partitions backing the index (1 when monolithic)
	Tables           int // live tables (tombstoned ones excluded)
	Tombstones       int // removed-but-not-compacted tables still holding space
	Entries          int
	DistinctValues   int
	NumericCells     int // cells carrying a quadrant bit
	AvgPostingLength float64
	MaxPostingLength int
	DictBytes        int64
	EstimatedBytes   int64 // heap-resident footprint (resident shards only when mapped)
	AvgColumnsPerTbl float64
	AvgRowsPerTable  float64

	// Lazily mapped (v4) indexes report how much of the lake is actually
	// on the heap versus still just memory-mapped file pages. For
	// heap-built or eagerly loaded indexes ResidentShards == Shards and
	// MappedBytes == 0. Content scans above cover resident shards only,
	// so a stats probe never forces the whole index resident.
	ResidentShards int
	MappedBytes    int64
}

// ComputeStats scans the index once and returns its summary.
func (s *Store) ComputeStats() Stats {
	st := Stats{
		Layout:         s.layout,
		Shards:         1,
		Tables:         s.NumTables() - s.numDead,
		Tombstones:     s.numDead,
		Entries:        s.NumEntries(),
		DistinctValues: s.NumDistinctValues(),
		EstimatedBytes: s.SizeBytes(),
		ResidentShards: 1,
	}
	for _, v := range s.dict {
		st.DictBytes += int64(len(v))
	}
	totalPost := 0
	for _, p := range s.postings {
		totalPost += len(p)
		if len(p) > st.MaxPostingLength {
			st.MaxPostingLength = len(p)
		}
	}
	if len(s.postings) > 0 {
		st.AvgPostingLength = float64(totalPost) / float64(len(s.postings))
	}
	for _, q := range s.quadrant {
		if q != QuadrantNull {
			st.NumericCells++
		}
	}
	var cols, rows int
	for tid, m := range s.tables {
		if s.dead[tid] {
			continue
		}
		cols += len(m.ColNames)
		rows += int(m.NumRows)
	}
	if st.Tables > 0 {
		st.AvgColumnsPerTbl = float64(cols) / float64(st.Tables)
		st.AvgRowsPerTable = float64(rows) / float64(st.Tables)
	}
	return st
}
