// Package storage implements the database substrate that hosts BLEND's
// unified index: the AllTables fact table of Fig. 3 in the paper
// (CellValue, TableId, ColumnId, RowId, SuperKey, Quadrant), together with
// the two in-database indexes the paper creates on it (an inverted index on
// CellValue and a clustered range index on TableId), value-frequency
// statistics for the cost model, and binary persistence.
//
// The paper deploys AllTables on PostgreSQL (row store) and on a commercial
// column store and compares the two; this package therefore implements both
// physical layouts behind one API. The column layout stores each attribute
// in a dense parallel array (scans touch only the attributes they need);
// the row layout stores one struct per index entry (scans drag the whole
// tuple through the cache), reproducing the row-vs-column runtime gap the
// paper's figures report.
package storage

import (
	"fmt"
	"sort"

	"blend/internal/berr"
	"blend/internal/qcr"
	"blend/internal/table"
	"blend/internal/xash"
)

// Layout selects the physical representation of the AllTables relation.
type Layout int

const (
	// ColumnStore stores AllTables as parallel per-attribute arrays.
	ColumnStore Layout = iota
	// RowStore stores AllTables as a slice of entry structs.
	RowStore
)

// String returns the layout name as used in the paper's figures.
func (l Layout) String() string {
	switch l {
	case ColumnStore:
		return "Column"
	case RowStore:
		return "Row"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// QuadrantNull marks a non-numeric cell in the Quadrant attribute.
const QuadrantNull int8 = -1

// Row-layout record framing: each AllTables tuple is one variable-length
// packed record (heap-tuple style): fixed header then the inline cell
// value bytes. Reading any attribute decodes the record, and reading the
// value copies its bytes out — the per-tuple deforming cost that makes row
// stores slower on scan-heavy discovery queries, which the paper's
// row-vs-column figures measure.
const (
	rowOffTableID  = 0
	rowOffColumnID = 4
	rowOffRowID    = 8
	rowOffSuperLo  = 12
	rowOffSuperHi  = 20
	rowOffQuadrant = 28
	rowHeaderSize  = 29
)

// TableMeta records per-table catalog information kept alongside the index.
type TableMeta struct {
	Name     string
	ColNames []string
	ColKinds []table.Kind
	NumRows  int32
}

// Store is the AllTables relation plus its indexes and catalog. Build one
// with a Builder (offline phase, Fig. 2e) or Load one from disk.
type Store struct {
	layout Layout

	// Dictionary-encoded cell values. The value -> id map is split in two
	// layers so copy-on-write clones (see cow.go) can share the bulk of it
	// across generations: dictBase is shared read-only once a clone exists
	// and must never be written after that point; dictDelta holds this
	// generation's new values and is always owned by exactly one store. A
	// store built from scratch (builder, loader) has a nil delta and writes
	// its base directly. Values never appear in both layers.
	dict      []string
	dictBase  map[string]int32
	dictDelta map[string]int32

	// Column layout: parallel arrays, sorted by (TableID, RowID, ColumnID).
	valIdx    []int32
	tableIDs  []int32
	columnIDs []int32
	rowIDs    []int32
	superLo   []uint64
	superHi   []uint64
	quadrant  []int8

	// Row layout (populated only when layout == RowStore): packed
	// variable-length records and their start offsets.
	rowData []byte
	rowOff  []int64

	// In-DB index on CellValue: dictionary id -> sorted entry positions.
	postings [][]int32
	// In-DB index on TableId: table id -> [start, end) entry positions.
	tableRange [][2]int32

	tables []TableMeta
	// dead marks tombstoned tables (RemoveTable): their catalog slot and
	// entries stay allocated until Compact, but every read surface skips
	// them. len(dead) == len(tables) at all times.
	dead    []bool
	numDead int
}

// NewBuilder starts an offline indexing run producing a store with the given
// layout.
func NewBuilder(layout Layout) *Builder {
	return &Builder{
		store: &Store{
			layout:   layout,
			dictBase: make(map[string]int32),
		},
	}
}

// Builder accumulates tables into a Store. Not safe for concurrent use.
type Builder struct {
	store *Store
}

// Add indexes one table, assigning it the next table id, and returns that
// id. It computes, per row, the XASH super key over all cells and, per
// numeric cell, the quadrant bit against the column mean — the three
// unified structures of §V.
func (b *Builder) Add(t *table.Table) int32 {
	return b.store.addTable(t)
}

// AddTable appends one table to an already-finished store — the
// incremental index maintenance that a single unified relation makes
// cheap (§I contrasts this with maintaining an ensemble of incompatible
// index structures). The new table is immediately visible to queries.
// Not safe for use concurrent with readers.
func (s *Store) AddTable(t *table.Table) int32 {
	tid := s.addTable(t)
	if s.layout == RowStore {
		s.packRows()
	}
	return tid
}

// AddTablesBatch appends a batch of tables in order and returns their ids.
// Unlike a loop over AddTable, the attribute arrays are grown once for the
// whole batch (the cell count is known up front) and the row layout is
// re-packed once at the end. The workers argument exists for interface
// symmetry with the sharded store; a monolithic store shares one
// dictionary, so the batch is applied sequentially. Not safe for use
// concurrent with readers.
func (s *Store) AddTablesBatch(tables []*table.Table, workers int) []int32 {
	_ = workers
	cells := 0
	for _, t := range tables {
		cells += len(t.Rows) * len(t.Columns) // upper bound: nulls are skipped
	}
	s.reserve(cells)
	ids := make([]int32, len(tables))
	for i, t := range tables {
		ids[i] = s.addTable(t)
	}
	if s.layout == RowStore {
		s.packRows()
	}
	return ids
}

// reserve grows the attribute arrays for extra upcoming entries in one
// reallocation each, instead of the amortized doubling a long append
// sequence pays.
func (s *Store) reserve(extra int) {
	if extra <= 0 {
		return
	}
	need := len(s.valIdx) + extra
	if cap(s.valIdx) >= need {
		return
	}
	growI32 := func(a []int32) []int32 {
		n := make([]int32, len(a), need)
		copy(n, a)
		return n
	}
	growU64 := func(a []uint64) []uint64 {
		n := make([]uint64, len(a), need)
		copy(n, a)
		return n
	}
	s.valIdx = growI32(s.valIdx)
	s.tableIDs = growI32(s.tableIDs)
	s.columnIDs = growI32(s.columnIDs)
	s.rowIDs = growI32(s.rowIDs)
	s.superLo = growU64(s.superLo)
	s.superHi = growU64(s.superHi)
	q := make([]int8, len(s.quadrant), need)
	copy(q, s.quadrant)
	s.quadrant = q
}

// RemoveTable tombstones one table: its id stays allocated (ids are never
// reused before Compact) but the table disappears from every read surface —
// name lookups, posting scans, table ranges, reconstruction. The entries
// remain physically present until Compact reclaims them. Not safe for use
// concurrent with readers.
func (s *Store) RemoveTable(tid int32) error {
	if tid < 0 || int(tid) >= len(s.tables) {
		return berr.New(berr.CodeNotFound, "storage.remove", "no table with id %d", tid)
	}
	if s.dead[tid] {
		return berr.New(berr.CodeNotFound, "storage.remove", "table %d is already removed", tid)
	}
	s.dead[tid] = true
	s.numDead++
	return nil
}

// TableAlive reports whether a table id is allocated and not tombstoned.
func (s *Store) TableAlive(tid int32) bool {
	return tid >= 0 && int(tid) < len(s.tables) && !s.dead[tid]
}

// Tombstones reports the number of removed-but-not-compacted tables.
func (s *Store) Tombstones() int { return s.numDead }

// Compact physically reclaims tombstoned tables by rebuilding the store
// from its live tables, and returns how many tables were removed. Table
// ids are reassigned contiguously in their original relative order, so any
// externally held id is invalidated (the engine bumps its generation and
// purges caches around compaction). A store without tombstones is left
// untouched. Not safe for use concurrent with readers.
func (s *Store) Compact() int {
	if s.numDead == 0 {
		return 0
	}
	live := make([]*table.Table, 0, len(s.tables)-s.numDead)
	for tid := range s.tables {
		if !s.dead[tid] {
			live = append(live, s.reconstructTable(int32(tid)))
		}
	}
	removed := s.numDead
	*s = *Build(s.layout, live)
	return removed
}

func (s *Store) addTable(t *table.Table) int32 {
	tid := int32(len(s.tables))
	meta := TableMeta{Name: t.Name, NumRows: int32(len(t.Rows))}
	meta.ColNames = make([]string, len(t.Columns))
	meta.ColKinds = make([]table.Kind, len(t.Columns))
	for i, c := range t.Columns {
		meta.ColNames[i] = c.Name
		meta.ColKinds[i] = c.Kind
	}
	s.tables = append(s.tables, meta)
	s.dead = append(s.dead, false)

	// Column means for quadrant bits.
	means := make([]float64, len(t.Columns))
	numeric := make([]bool, len(t.Columns))
	for c, col := range t.Columns {
		if col.Kind != table.KindNumeric {
			continue
		}
		vals, _ := t.NumericColumnValues(c)
		if len(vals) == 0 {
			continue
		}
		numeric[c] = true
		means[c] = qcr.Mean(vals)
	}

	start := int32(len(s.valIdx))
	for r, row := range t.Rows {
		key := xash.HashRow(row)
		for c, v := range row {
			if v == table.Null {
				continue
			}
			q := QuadrantNull
			if numeric[c] {
				if f, ok := parseFloat(v); ok {
					q = qcr.QuadrantBit(f, means[c])
				}
			}
			s.appendEntry(v, tid, int32(c), int32(r), key, q)
		}
	}
	s.tableRange = append(s.tableRange, [2]int32{start, int32(len(s.valIdx))})
	return tid
}

// lookupValue resolves a cell value to its dictionary id across both map
// layers.
func (s *Store) lookupValue(v string) (int32, bool) {
	if vi, ok := s.dictBase[v]; ok {
		return vi, true
	}
	if s.dictDelta != nil {
		if vi, ok := s.dictDelta[v]; ok {
			return vi, true
		}
	}
	return 0, false
}

// internValue records a new value -> id mapping. A store with a delta layer
// shares its base read-only with older generations and must write the delta;
// an unshared store writes its base directly.
func (s *Store) internValue(v string, vi int32) {
	if s.dictDelta != nil {
		s.dictDelta[v] = vi
		return
	}
	s.dictBase[v] = vi
}

func (s *Store) appendEntry(v string, tid, cid, rid int32, key xash.Key, q int8) {
	vi, ok := s.lookupValue(v)
	if !ok {
		vi = int32(len(s.dict))
		s.dict = append(s.dict, v)
		s.internValue(v, vi)
		s.postings = append(s.postings, nil)
	}
	pos := int32(len(s.valIdx))
	s.valIdx = append(s.valIdx, vi)
	s.tableIDs = append(s.tableIDs, tid)
	s.columnIDs = append(s.columnIDs, cid)
	s.rowIDs = append(s.rowIDs, rid)
	s.superLo = append(s.superLo, key.Lo)
	s.superHi = append(s.superHi, key.Hi)
	s.quadrant = append(s.quadrant, q)
	s.postings[vi] = append(s.postings[vi], pos)
}

// Finish completes the offline phase and returns the immutable store.
func (b *Builder) Finish() *Store {
	s := b.store
	if s.layout == RowStore {
		s.packRows()
	}
	return s
}

// packRows materializes the row layout: one packed record per tuple. It is
// incremental — already-packed records are kept and only new entries are
// appended, so AddTable pays for its own tuples only.
func (s *Store) packRows() {
	n := len(s.valIdx)
	packed := 0
	if len(s.rowOff) > 0 {
		packed = len(s.rowOff) - 1
	}
	if packed == n {
		return
	}
	extra := 0
	for i := packed; i < n; i++ {
		extra += rowHeaderSize + len(s.dict[s.valIdx[i]])
	}
	off := int64(0)
	if packed > 0 {
		off = s.rowOff[packed]
		s.rowOff = s.rowOff[:packed]
	} else {
		s.rowOff = make([]int64, 0, n+1)
	}
	grown := make([]byte, int(off)+extra)
	copy(grown, s.rowData[:off])
	s.rowData = grown
	for i := packed; i < n; i++ {
		s.rowOff = append(s.rowOff, off)
		rec := s.rowData[off:]
		putU32(rec[rowOffTableID:], uint32(s.tableIDs[i]))
		putU32(rec[rowOffColumnID:], uint32(s.columnIDs[i]))
		putU32(rec[rowOffRowID:], uint32(s.rowIDs[i]))
		putU64(rec[rowOffSuperLo:], s.superLo[i])
		putU64(rec[rowOffSuperHi:], s.superHi[i])
		rec[rowOffQuadrant] = byte(s.quadrant[i])
		v := s.dict[s.valIdx[i]]
		copy(rec[rowHeaderSize:], v)
		off += int64(rowHeaderSize + len(v))
	}
	s.rowOff = append(s.rowOff, off)
}

// Build indexes all tables in order and returns the finished store.
func Build(layout Layout, tables []*table.Table) *Store {
	b := NewBuilder(layout)
	for _, t := range tables {
		b.Add(t)
	}
	return b.Finish()
}

func parseFloat(s string) (float64, bool) {
	// Inline fast path: strconv via package table semantics.
	var f float64
	var err error
	f, err = strconvParseFloat(s)
	return f, err == nil
}

// Layout reports the store's physical layout.
func (s *Store) Layout() Layout { return s.layout }

// NumShards reports 1: a monolithic store is a single partition.
func (s *Store) NumShards() int { return 1 }

// NumEntries reports the number of AllTables tuples.
func (s *Store) NumEntries() int { return len(s.valIdx) }

// NumTables reports the number of indexed tables.
func (s *Store) NumTables() int { return len(s.tables) }

// NumDistinctValues reports the dictionary size.
func (s *Store) NumDistinctValues() int { return len(s.dict) }

// TableMeta returns catalog information for a table id.
func (s *Store) TableMeta(tid int32) TableMeta { return s.tables[tid] }

// TableName returns the name of a table id, or "" if out of range or
// tombstoned.
func (s *Store) TableName(tid int32) string {
	if !s.TableAlive(tid) {
		return ""
	}
	return s.tables[tid].Name
}

// TableIDByName returns the id of the named live table, or -1.
func (s *Store) TableIDByName(name string) int32 {
	for i, m := range s.tables {
		if m.Name == name && !s.dead[i] {
			return int32(i)
		}
	}
	return -1
}

// record returns the packed row-layout record of entry i.
func (s *Store) record(i int32) []byte {
	return s.rowData[s.rowOff[i]:s.rowOff[i+1]]
}

// Value returns the CellValue of entry i, honouring the physical layout.
// In the row layout this copies the value bytes out of the packed record,
// as a row store must when projecting a tuple attribute.
func (s *Store) Value(i int32) string {
	if s.layout == RowStore {
		return string(s.record(i)[rowHeaderSize:])
	}
	return s.dict[s.valIdx[i]]
}

// TableID returns the TableId of entry i.
func (s *Store) TableID(i int32) int32 {
	if s.layout == RowStore {
		return int32(getU32(s.record(i)[rowOffTableID:]))
	}
	return s.tableIDs[i]
}

// ColumnID returns the ColumnId of entry i.
func (s *Store) ColumnID(i int32) int32 {
	if s.layout == RowStore {
		return int32(getU32(s.record(i)[rowOffColumnID:]))
	}
	return s.columnIDs[i]
}

// RowID returns the RowId of entry i.
func (s *Store) RowID(i int32) int32 {
	if s.layout == RowStore {
		return int32(getU32(s.record(i)[rowOffRowID:]))
	}
	return s.rowIDs[i]
}

// SuperKey returns the XASH super key of entry i's row.
func (s *Store) SuperKey(i int32) xash.Key {
	if s.layout == RowStore {
		rec := s.record(i)
		return xash.Key{Lo: getU64(rec[rowOffSuperLo:]), Hi: getU64(rec[rowOffSuperHi:])}
	}
	return xash.Key{Lo: s.superLo[i], Hi: s.superHi[i]}
}

// Quadrant returns the quadrant bit of entry i, or QuadrantNull for
// non-numeric cells.
func (s *Store) Quadrant(i int32) int8 {
	if s.layout == RowStore {
		return int8(s.record(i)[rowOffQuadrant])
	}
	return s.quadrant[i]
}

// Postings returns the sorted entry positions whose CellValue equals v
// (the in-DB inverted index lookup), restricted to live tables. Without
// tombstones the shared index slice is returned directly (callers must not
// modify it); with tombstones a filtered copy is allocated — Compact
// restores the zero-copy path.
func (s *Store) Postings(v string) []int32 {
	vi, ok := s.lookupValue(v)
	if !ok {
		return nil
	}
	if s.numDead == 0 {
		return s.postings[vi]
	}
	out := make([]int32, 0, len(s.postings[vi]))
	for _, p := range s.postings[vi] {
		if !s.dead[s.TableID(p)] {
			out = append(out, p)
		}
	}
	return out
}

// Frequency returns the number of live index entries holding value v.
func (s *Store) Frequency(v string) int {
	vi, ok := s.lookupValue(v)
	if !ok {
		return 0
	}
	if s.numDead == 0 {
		return len(s.postings[vi])
	}
	n := 0
	for _, p := range s.postings[vi] {
		if !s.dead[s.TableID(p)] {
			n++
		}
	}
	return n
}

// ScanPostings streams the (TableId, ColumnId, RowId) attributes of every
// entry holding value v, in ascending entry-position order — the native
// posting-list access path the engine's fast seeker executor scans instead
// of interpreting SQL. The column layout reads the attribute arrays
// directly; the row layout decodes each packed record, paying the same
// per-tuple deforming cost its SQL scans do.
func (s *Store) ScanPostings(v string, fn func(tid, cid, rid int32)) {
	vi, ok := s.lookupValue(v)
	if !ok {
		return
	}
	if s.layout == RowStore {
		for _, p := range s.postings[vi] {
			rec := s.record(p)
			tid := int32(getU32(rec[rowOffTableID:]))
			if s.numDead > 0 && s.dead[tid] {
				continue
			}
			fn(tid,
				int32(getU32(rec[rowOffColumnID:])),
				int32(getU32(rec[rowOffRowID:])))
		}
		return
	}
	for _, p := range s.postings[vi] {
		if s.numDead > 0 && s.dead[s.tableIDs[p]] {
			continue
		}
		fn(s.tableIDs[p], s.columnIDs[p], s.rowIDs[p])
	}
}

// ScanPostingsSuper streams, for every entry holding value v, its
// (TableId, ColumnId, RowId) attributes plus the XASH super key of its row
// — the candidate stream of the native multi-column executor. The column
// layout reads the dedicated super-key arrays; the row layout decodes the
// packed record it already touched for the ids, so the key costs no extra
// cache line.
func (s *Store) ScanPostingsSuper(v string, fn func(tid, cid, rid int32, super xash.Key)) {
	vi, ok := s.lookupValue(v)
	if !ok {
		return
	}
	if s.layout == RowStore {
		for _, p := range s.postings[vi] {
			rec := s.record(p)
			tid := int32(getU32(rec[rowOffTableID:]))
			if s.numDead > 0 && s.dead[tid] {
				continue
			}
			fn(tid,
				int32(getU32(rec[rowOffColumnID:])),
				int32(getU32(rec[rowOffRowID:])),
				xash.Key{Lo: getU64(rec[rowOffSuperLo:]), Hi: getU64(rec[rowOffSuperHi:])})
		}
		return
	}
	for _, p := range s.postings[vi] {
		if s.numDead > 0 && s.dead[s.tableIDs[p]] {
			continue
		}
		fn(s.tableIDs[p], s.columnIDs[p], s.rowIDs[p],
			xash.Key{Lo: s.superLo[p], Hi: s.superHi[p]})
	}
}

// ScanTableNumeric streams the numeric cells (Quadrant not null) of table
// tid whose RowId < maxRow, in ascending (RowId, ColumnId) order — the
// per-table quadrant stream the native correlation executor merge-joins
// against key-column posting hits. Entries within a table are sorted by
// (RowId, ColumnId), so the first entry at or past maxRow ends the scan.
// A tombstoned table streams nothing (TableEntries yields the empty
// range). The column layout touches only the three attribute arrays it
// needs; the row layout decodes each packed record, paying the per-tuple
// deforming cost its SQL scans do.
func (s *Store) ScanTableNumeric(tid, maxRow int32, fn func(cid, rid int32, q int8)) {
	start, end := s.TableEntries(tid)
	if s.layout == RowStore {
		for i := start; i < end; i++ {
			rec := s.record(i)
			rid := int32(getU32(rec[rowOffRowID:]))
			if rid >= maxRow {
				return
			}
			q := int8(rec[rowOffQuadrant])
			if q == QuadrantNull {
				continue
			}
			fn(int32(getU32(rec[rowOffColumnID:])), rid, q)
		}
		return
	}
	for i := start; i < end; i++ {
		rid := s.rowIDs[i]
		if rid >= maxRow {
			return
		}
		q := s.quadrant[i]
		if q == QuadrantNull {
			continue
		}
		fn(s.columnIDs[i], rid, q)
	}
}

// AvgFrequency returns the mean index frequency of the given values — the
// statistic BLEND's learned cost model uses as a feature (§VII-B).
func (s *Store) AvgFrequency(values []string) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0
	for _, v := range values {
		total += s.Frequency(v)
	}
	return float64(total) / float64(len(values))
}

// TableEntries returns the [start, end) entry range of a table id (the
// in-DB index on TableId used for fast table loading). A tombstoned table
// yields the empty range.
func (s *Store) TableEntries(tid int32) (start, end int32) {
	if s.numDead > 0 && s.dead[tid] {
		return 0, 0
	}
	r := s.tableRange[tid]
	return r[0], r[1]
}

// ReconstructRow materializes row rid of table tid from the index, with
// nulls for absent cells — how BLEND validates candidate rows without
// loading source files.
func (s *Store) ReconstructRow(tid, rid int32) []string {
	meta := s.tables[tid]
	row := make([]string, len(meta.ColNames))
	start, end := s.TableEntries(tid)
	// Entries are sorted by (TableID, RowID, ColumnID): binary search the
	// row's first entry.
	lo := start + int32(sort.Search(int(end-start), func(k int) bool {
		return s.RowID(start+int32(k)) >= rid
	}))
	for i := lo; i < end && s.RowID(i) == rid; i++ {
		row[s.ColumnID(i)] = s.Value(i)
	}
	return row
}

// ReconstructTable materializes a full table from the index, or nil when
// the table is tombstoned.
func (s *Store) ReconstructTable(tid int32) *table.Table {
	if s.numDead > 0 && s.dead[tid] {
		return nil
	}
	return s.reconstructTable(tid)
}

// reconstructTable materializes a table straight off the physical entry
// range, regardless of tombstone state.
func (s *Store) reconstructTable(tid int32) *table.Table {
	meta := s.tables[tid]
	t := table.New(meta.Name, meta.ColNames...)
	for c, k := range meta.ColKinds {
		t.Columns[c].Kind = k
	}
	t.Rows = make([][]string, meta.NumRows)
	for r := range t.Rows {
		t.Rows[r] = make([]string, len(meta.ColNames))
	}
	r := s.tableRange[tid]
	for i := r[0]; i < r[1]; i++ {
		t.Rows[s.RowID(i)][s.ColumnID(i)] = s.Value(i)
	}
	return t
}

// SizeBytes estimates the resident size of the index in bytes: dictionary
// strings plus fixed-width attribute arrays plus postings. Used to
// reproduce the storage comparison of Table VIII.
func (s *Store) SizeBytes() int64 {
	var b int64
	for _, v := range s.dict {
		b += int64(len(v)) + 16 // string header
	}
	n := int64(len(s.valIdx))
	b += n * (4 + 4 + 4 + 4 + 8 + 8 + 1) // attribute arrays
	for _, p := range s.postings {
		b += int64(len(p)) * 4
	}
	b += int64(len(s.tableRange)) * 8
	if s.layout == RowStore {
		b += int64(len(s.rowData)) + int64(len(s.rowOff))*8
	}
	return b
}
