package storage

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"blend/internal/table"
	"blend/internal/xash"
)

// lakeFixture builds the running example of the paper's Fig. 1.
func lakeFixture() []*table.Table {
	s := table.New("S", "Dep", "Head")
	s.MustAppendRow("HR", "Firenze")
	s.MustAppendRow("Marketing", "")
	s.MustAppendRow("Finance", "")

	t1 := table.New("T1", "Team", "Size")
	t1.MustAppendRow("Finance", "31")
	t1.MustAppendRow("Marketing", "28")
	t1.MustAppendRow("HR", "33")
	t1.MustAppendRow("IT", "92")

	t2 := table.New("T2", "Lead", "Year", "Team")
	t2.MustAppendRow("Tom Riddle", "2022", "IT")
	t2.MustAppendRow("Firenze", "2022", "HR")

	t3 := table.New("T3", "Lead", "Year", "Team")
	t3.MustAppendRow("Ronald Weasley", "2024", "IT")
	t3.MustAppendRow("Firenze", "2024", "HR")

	for _, t := range []*table.Table{s, t1, t2, t3} {
		t.InferKinds()
	}
	return []*table.Table{s, t1, t2, t3}
}

func TestBuildBasics(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	if s.NumTables() != 4 {
		t.Fatalf("NumTables = %d", s.NumTables())
	}
	// S has 4 non-null cells (2 nulls skipped), T1 8, T2 6, T3 6.
	if got := s.NumEntries(); got != 24 {
		t.Fatalf("NumEntries = %d, want 24", got)
	}
	if s.TableName(2) != "T2" {
		t.Fatalf("TableName(2) = %q", s.TableName(2))
	}
	if s.TableIDByName("T3") != 3 {
		t.Fatal("TableIDByName wrong")
	}
	if s.TableIDByName("nope") != -1 {
		t.Fatal("missing table should be -1")
	}
}

func TestPostings(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	p := s.Postings("Firenze")
	if len(p) != 3 { // S, T2, T3
		t.Fatalf("Firenze postings = %d, want 3", len(p))
	}
	tables := map[int32]bool{}
	for _, e := range p {
		tables[s.TableID(e)] = true
	}
	if !tables[0] || !tables[2] || !tables[3] {
		t.Fatalf("Firenze found in wrong tables: %v", tables)
	}
	if s.Postings("nonexistent") != nil {
		t.Fatal("missing value should have nil postings")
	}
	if s.Frequency("HR") != 4 { // S, T1, T2, T3
		t.Fatalf("Frequency(HR) = %d", s.Frequency("HR"))
	}
}

func TestAvgFrequency(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	if got := s.AvgFrequency(nil); got != 0 {
		t.Fatal("empty input should be 0")
	}
	got := s.AvgFrequency([]string{"Firenze", "nonexistent"})
	if got != 1.5 {
		t.Fatalf("AvgFrequency = %v, want 1.5", got)
	}
}

func TestQuadrantBits(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	// T1.Size: 31,28,33,92 → mean 46; only 92 is ≥ mean.
	start, end := s.TableEntries(1)
	ones, zeros, nulls := 0, 0, 0
	for i := start; i < end; i++ {
		switch s.Quadrant(i) {
		case 1:
			ones++
		case 0:
			zeros++
		default:
			nulls++
		}
	}
	// T1 contributes 4 numeric cells (1 one, 3 zeros) and 4 string cells.
	if ones != 1 || zeros != 3 || nulls != 4 {
		t.Fatalf("quadrants ones=%d zeros=%d nulls=%d", ones, zeros, nulls)
	}
}

func TestSuperKeyContainsCellHash(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	for i := int32(0); i < int32(s.NumEntries()); i++ {
		tid, rid := s.TableID(i), s.RowID(i)
		row := s.ReconstructRow(tid, rid)
		key := s.SuperKey(i)
		for _, cell := range row {
			if cell == "" {
				continue
			}
			if !key.Contains(xash.Hash(cell)) {
				t.Fatalf("super key of table %d row %d misses cell %q", tid, rid, cell)
			}
		}
	}
}

func TestReconstructRow(t *testing.T) {
	tables := lakeFixture()
	s := Build(ColumnStore, tables)
	got := s.ReconstructRow(2, 0)
	want := []string{"Tom Riddle", "2022", "IT"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("row = %v, want %v", got, want)
	}
	// Row with nulls.
	got = s.ReconstructRow(0, 1)
	want = []string{"Marketing", ""}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("row = %v, want %v", got, want)
	}
}

func TestReconstructTable(t *testing.T) {
	tables := lakeFixture()
	s := Build(ColumnStore, tables)
	for tid, orig := range tables {
		got := s.ReconstructTable(int32(tid))
		if got.Name != orig.Name {
			t.Fatalf("name %q != %q", got.Name, orig.Name)
		}
		if !reflect.DeepEqual(got.Rows, orig.Rows) {
			t.Fatalf("table %s rows differ:\n%v\n%v", orig.Name, got.Rows, orig.Rows)
		}
	}
}

func TestLayoutsAgree(t *testing.T) {
	tables := lakeFixture()
	col := Build(ColumnStore, tables)
	row := Build(RowStore, tables)
	if col.NumEntries() != row.NumEntries() {
		t.Fatal("entry counts differ")
	}
	for i := int32(0); i < int32(col.NumEntries()); i++ {
		if col.Value(i) != row.Value(i) ||
			col.TableID(i) != row.TableID(i) ||
			col.ColumnID(i) != row.ColumnID(i) ||
			col.RowID(i) != row.RowID(i) ||
			col.SuperKey(i) != row.SuperKey(i) ||
			col.Quadrant(i) != row.Quadrant(i) {
			t.Fatalf("layouts disagree at entry %d", i)
		}
	}
}

func TestPersistRoundTrip(t *testing.T) {
	for _, layout := range []Layout{ColumnStore, RowStore} {
		orig := Build(layout, lakeFixture())
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Layout() != layout {
			t.Fatalf("layout = %v, want %v", back.Layout(), layout)
		}
		if back.NumEntries() != orig.NumEntries() || back.NumTables() != orig.NumTables() {
			t.Fatal("counts differ after round trip")
		}
		for i := int32(0); i < int32(orig.NumEntries()); i++ {
			if back.Value(i) != orig.Value(i) || back.Quadrant(i) != orig.Quadrant(i) ||
				back.SuperKey(i) != orig.SuperKey(i) || back.TableID(i) != orig.TableID(i) {
				t.Fatalf("entry %d differs after round trip", i)
			}
		}
		// Derived indexes must be rebuilt identically.
		if len(back.Postings("Firenze")) != len(orig.Postings("Firenze")) {
			t.Fatal("postings differ after round trip")
		}
		for tid := int32(0); tid < int32(orig.NumTables()); tid++ {
			s1, e1 := orig.TableEntries(tid)
			s2, e2 := back.TableEntries(tid)
			if s1 != s2 || e1 != e2 {
				t.Fatalf("table range %d differs", tid)
			}
		}
	}
}

func TestPersistFiles(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/idx.blend"
	orig := Build(ColumnStore, lakeFixture())
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEntries() != orig.NumEntries() {
		t.Fatal("file round trip lost entries")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	if s.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	r := Build(RowStore, lakeFixture())
	if r.SizeBytes() <= s.SizeBytes() {
		t.Fatal("row layout must account for extra materialization")
	}
}

// TestPersistQuickRoundTrip property-tests persistence over random tables.
func TestPersistQuickRoundTrip(t *testing.T) {
	f := func(cells [][2]string) bool {
		tb := table.New("q", "a", "b")
		for _, c := range cells {
			tb.MustAppendRow(c[0], c[1])
		}
		tb.InferKinds()
		orig := Build(ColumnStore, []*table.Table{tb})
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil {
			return false
		}
		if back.NumEntries() != orig.NumEntries() {
			return false
		}
		for i := int32(0); i < int32(orig.NumEntries()); i++ {
			if back.Value(i) != orig.Value(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddTableIncremental(t *testing.T) {
	for _, layout := range []Layout{ColumnStore, RowStore} {
		s := Build(layout, lakeFixture())
		before := s.NumTables()
		nt := table.New("T4", "Team", "Budget")
		nt.MustAppendRow("Legal", "12")
		nt.MustAppendRow("HR", "44")
		nt.InferKinds()
		tid := s.AddTable(nt)
		if int(tid) != before {
			t.Fatalf("layout %v: new table id = %d, want %d", layout, tid, before)
		}
		if s.NumTables() != before+1 {
			t.Fatalf("layout %v: table count wrong", layout)
		}
		// New value visible through the inverted index.
		if len(s.Postings("Legal")) != 1 {
			t.Fatalf("layout %v: Legal postings = %d", layout, len(s.Postings("Legal")))
		}
		// Existing value frequency grew.
		if s.Frequency("HR") != 5 {
			t.Fatalf("layout %v: HR frequency = %d, want 5", layout, s.Frequency("HR"))
		}
		// Reconstruction works for old and new tables.
		if got := s.ReconstructRow(tid, 0); got[0] != "Legal" || got[1] != "12" {
			t.Fatalf("layout %v: new row = %v", layout, got)
		}
		if got := s.ReconstructRow(2, 0); got[0] != "Tom Riddle" {
			t.Fatalf("layout %v: old row corrupted: %v", layout, got)
		}
		// Quadrant bits computed for the numeric column (mean 28: only 44 is above).
		start, end := s.TableEntries(tid)
		ones := 0
		for i := start; i < end; i++ {
			if s.Quadrant(i) == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("layout %v: quadrant ones = %d, want 1", layout, ones)
		}
	}
}

func TestAddTableThenPersist(t *testing.T) {
	s := Build(RowStore, lakeFixture())
	nt := table.New("T4", "A")
	nt.MustAppendRow("zz-new-value")
	s.AddTable(nt)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Frequency("zz-new-value") != 1 {
		t.Fatal("incrementally added value lost on round trip")
	}
}

func TestAddTableRepeatedRowStorePackIsIncremental(t *testing.T) {
	s := Build(RowStore, lakeFixture())
	for i := 0; i < 5; i++ {
		nt := table.New(fmt.Sprintf("extra%d", i), "V")
		nt.MustAppendRow(fmt.Sprintf("val%d", i))
		s.AddTable(nt)
	}
	// All entries readable and consistent between layout accessors.
	for i := int32(0); i < int32(s.NumEntries()); i++ {
		if s.Value(i) == "" {
			t.Fatalf("entry %d lost its value", i)
		}
	}
	if s.NumTables() != 9 {
		t.Fatalf("tables = %d", s.NumTables())
	}
}

func TestComputeStats(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	st := s.ComputeStats()
	if st.Tables != 4 || st.Entries != 24 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.DistinctValues != s.NumDistinctValues() {
		t.Fatal("distinct count mismatch")
	}
	if st.NumericCells == 0 {
		t.Fatal("numeric cells missing")
	}
	if st.AvgPostingLength <= 0 || st.MaxPostingLength < 4 { // "HR" appears 4×
		t.Fatalf("posting stats: %+v", st)
	}
	if st.AvgColumnsPerTbl <= 0 || st.AvgRowsPerTable <= 0 {
		t.Fatal("table shape averages missing")
	}
	if st.EstimatedBytes != s.SizeBytes() {
		t.Fatal("size mismatch")
	}
}
