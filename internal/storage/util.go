package storage

import (
	"strconv"
	"strings"
)

// strconvParseFloat parses a cell as a float, tolerating surrounding
// whitespace, mirroring table.Table.NumericColumnValues.
func strconvParseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// Little-endian record codecs for the packed row layout.

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
