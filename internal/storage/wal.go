package storage

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"blend/internal/berr"
	"blend/internal/table"
)

// Minimal append-only write-ahead log for index mutations. The engine
// appends a record before publishing each generation, so a crash between a
// publish and the next Save replays the lost mutations on reopen and the
// process resumes at the generation it had published.
//
// On-disk format, one record after another:
//
//	[kind u8] [payload len u32 LE] [payload] [crc32c u32 LE]
//
// The checksum covers kind, length, and payload. Replay stops silently at
// the first torn or corrupt record (a crash mid-append leaves at most one),
// and Open truncates the file back to the last intact record so the next
// append extends a clean tail. A checkpoint record marks "the index was
// durably saved at generation g": replay starts from the last checkpoint,
// and Reset rewrites the log to just that marker after each successful
// Save.

// WAL record kinds.
const (
	walCheckpoint byte = 1 // payload: generation u64
	walAddTables  byte = 2 // payload: serialized table batch
	walRemove     byte = 3 // payload: global table id u32
	walCompact    byte = 4 // payload: empty
)

const walOp = "storage.wal"

// WALRecord is one replayed mutation.
type WALRecord struct {
	// Kind is one of the wal* record kinds, exposed via the Is* helpers on
	// ReplaySet instead of the raw byte.
	kind   byte
	tables []*table.Table // walAddTables
	tid    int32          // walRemove
}

// IsAddTables reports whether the record is a table batch, returning it.
func (r WALRecord) IsAddTables() ([]*table.Table, bool) { return r.tables, r.kind == walAddTables }

// IsRemove reports whether the record is a table removal, returning the id.
func (r WALRecord) IsRemove() (int32, bool) { return r.tid, r.kind == walRemove }

// IsCompact reports whether the record is a compaction.
func (r WALRecord) IsCompact() bool { return r.kind == walCompact }

// WAL is an append-only mutation log. Appends are serialized by an internal
// mutex and synced to disk before returning, so a record that was reported
// written survives a crash.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenWAL opens (creating if absent) the log at path, replays its intact
// records, and returns the log ready for appends, the mutations recorded
// since the last checkpoint, and the generation of that checkpoint (0 when
// the log has never seen one).
func OpenWAL(path string) (*WAL, []WALRecord, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	recs, gen, good := replayWAL(data)
	if good < int64(len(data)) {
		// Torn tail from a crash mid-append: drop it so the next record
		// starts at a clean boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, berr.Wrap(berr.CodeBadIndex, walOp, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	return &WAL{f: f, path: path}, recs, gen, nil
}

// replayWAL decodes records until the data ends or a record fails its
// bounds or checksum, returning the mutations since the last checkpoint,
// that checkpoint's generation, and the byte offset of the intact prefix.
func replayWAL(data []byte) (recs []WALRecord, gen uint64, good int64) {
	off := 0
	for {
		if off+5 > len(data) {
			return recs, gen, int64(off)
		}
		kind := data[off]
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		if off+5+n+4 > len(data) {
			return recs, gen, int64(off)
		}
		payload := data[off+5 : off+5+n]
		sum := binary.LittleEndian.Uint32(data[off+5+n:])
		if crc32.Checksum(data[off:off+5+n], castagnoli) != sum {
			return recs, gen, int64(off)
		}
		switch kind {
		case walCheckpoint:
			if n != 8 {
				return recs, gen, int64(off)
			}
			gen = binary.LittleEndian.Uint64(payload)
			recs = recs[:0]
		case walAddTables:
			tables, err := decodeWALTables(payload)
			if err != nil {
				return recs, gen, int64(off)
			}
			recs = append(recs, WALRecord{kind: kind, tables: tables})
		case walRemove:
			if n != 4 {
				return recs, gen, int64(off)
			}
			recs = append(recs, WALRecord{kind: kind, tid: int32(binary.LittleEndian.Uint32(payload))})
		case walCompact:
			recs = append(recs, WALRecord{kind: kind})
		default:
			return recs, gen, int64(off)
		}
		off += 5 + n + 4
	}
}

// append writes one record and syncs it to disk.
func (w *WAL) append(kind byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := make([]byte, 0, 5+len(payload)+4)
	rec = append(rec, kind)
	rec = appendU32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = appendU32(rec, crc32.Checksum(rec, castagnoli))
	if _, err := w.f.Write(rec); err != nil {
		return berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	if err := w.f.Sync(); err != nil {
		return berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	return nil
}

// AddTables logs a table batch insertion.
func (w *WAL) AddTables(tables []*table.Table) error {
	return w.append(walAddTables, encodeWALTables(tables))
}

// RemoveTable logs a table removal by global id.
func (w *WAL) RemoveTable(tid int32) error {
	return w.append(walRemove, appendU32(nil, uint32(tid)))
}

// Compact logs a compaction.
func (w *WAL) Compact() error {
	return w.append(walCompact, nil)
}

// Checkpoint rewrites the log to a single checkpoint marker at gen — the
// index was just durably saved, so the mutations before it need never be
// replayed again.
func (w *WAL) Checkpoint(gen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	rec := make([]byte, 0, 5+8+4)
	rec = append(rec, walCheckpoint)
	rec = appendU32(rec, 8)
	rec = appendU64(rec, gen)
	rec = appendU32(rec, crc32.Checksum(rec, castagnoli))
	if _, err := w.f.Write(rec); err != nil {
		return berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	if err := w.f.Sync(); err != nil {
		return berr.Wrap(berr.CodeBadIndex, walOp, err)
	}
	return nil
}

// Close releases the log file handle.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// encodeWALTables serializes a table batch: table count, then per table its
// name, columns (name + kind byte), and rows as length-prefixed cells. All
// counts and lengths are uvarints, matching the segDecoder the replay path
// reads with.
func encodeWALTables(tables []*table.Table) []byte {
	b := binary.AppendUvarint(nil, uint64(len(tables)))
	str := func(s string) {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	for _, t := range tables {
		str(t.Name)
		b = binary.AppendUvarint(b, uint64(len(t.Columns)))
		for _, c := range t.Columns {
			str(c.Name)
			b = append(b, byte(c.Kind))
		}
		b = binary.AppendUvarint(b, uint64(len(t.Rows)))
		for _, row := range t.Rows {
			for _, cell := range row {
				str(cell)
			}
		}
	}
	return b
}

// decodeWALTables is the inverse of encodeWALTables, bounds-checked so a
// corrupt payload fails cleanly instead of panicking.
func decodeWALTables(b []byte) ([]*table.Table, error) {
	d := &segDecoder{b: b}
	numTables, err := d.count("table")
	if err != nil {
		return nil, err
	}
	tables := make([]*table.Table, 0, minInt(numTables, 1<<16))
	for i := 0; i < numTables; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		numCols, err := d.count("column")
		if err != nil {
			return nil, err
		}
		t := table.New(name)
		for c := 0; c < numCols; c++ {
			cn, err := d.str()
			if err != nil {
				return nil, err
			}
			kb, err := d.byte()
			if err != nil {
				return nil, err
			}
			t.Columns = append(t.Columns, table.Column{Name: cn, Kind: table.Kind(kb)})
		}
		numRows, err := d.count("row")
		if err != nil {
			return nil, err
		}
		t.Rows = make([][]string, 0, minInt(numRows, 1<<20))
		for r := 0; r < numRows; r++ {
			row := make([]string, numCols)
			for c := range row {
				if row[c], err = d.str(); err != nil {
					return nil, err
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return tables, nil
}
