package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"blend/internal/table"
)

func walTestTable(name string) *table.Table {
	t := table.New(name, "Team", "Size")
	t.MustAppendRow("HR", "33")
	t.MustAppendRow("IT", "92")
	t.InferKinds()
	return t
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, gen, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || gen != 0 {
		t.Fatalf("fresh log: recs=%d gen=%d", len(recs), gen)
	}
	want := walTestTable("W1")
	if err := w.AddTables([]*table.Table{want}); err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveTable(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, gen, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if gen != 0 || len(recs) != 3 {
		t.Fatalf("replay: recs=%d gen=%d", len(recs), gen)
	}
	tables, ok := recs[0].IsAddTables()
	if !ok || len(tables) != 1 {
		t.Fatalf("rec 0 = %+v", recs[0])
	}
	got := tables[0]
	if got.Name != want.Name || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("decoded table %+v, want %+v", got, want)
	}
	if len(got.Columns) != len(want.Columns) || got.Columns[1].Kind != want.Columns[1].Kind {
		t.Fatalf("decoded columns %+v, want %+v", got.Columns, want.Columns)
	}
	if tid, ok := recs[1].IsRemove(); !ok || tid != 7 {
		t.Fatalf("rec 1 = %+v", recs[1])
	}
	if !recs[2].IsCompact() {
		t.Fatalf("rec 2 = %+v", recs[2])
	}
}

// TestWALTornTail simulates a crash mid-append: the torn final record is
// dropped and the file truncated back to the last intact boundary, so the
// next append extends a clean tail.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveTable(1); err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveTable(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("torn replay: %d records, want 1", len(recs))
	}
	if err := w2.RemoveTable(3); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, _, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("post-truncate replay: %d records, want 2", len(recs))
	}
}

// TestWALCheckpoint verifies Checkpoint rewrites the log to one marker:
// earlier mutations are never replayed again and the generation survives.
func TestWALCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddTables([]*table.Table{walTestTable("W1")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(42); err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveTable(5); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, recs, gen, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if gen != 42 {
		t.Fatalf("checkpoint generation %d, want 42", gen)
	}
	if len(recs) != 1 {
		t.Fatalf("post-checkpoint replay: %d records, want 1", len(recs))
	}
	if tid, ok := recs[0].IsRemove(); !ok || tid != 5 {
		t.Fatalf("rec 0 = %+v", recs[0])
	}
}
