package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReadCSV parses a table from CSV. The first record is the header. Empty
// fields become nulls. The table name is taken from the name argument.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows; we pad/truncate below
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header for %q: %w", name, err)
	}
	t := New(name, header...)
	width := len(header)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv row for %q: %w", name, err)
		}
		row := make([]string, width)
		for i := 0; i < width && i < len(rec); i++ {
			row[i] = strings.TrimSpace(rec[i])
		}
		t.Rows = append(t.Rows, row)
	}
	t.InferKinds()
	return t, nil
}

// ReadCSVFile loads a table from a CSV file; the table is named after the
// file's base name without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, f)
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the given path, creating parent
// directories as needed.
func (t *Table) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSVDir loads every *.csv file in dir as a table, sorted by file name
// so that table order (and therefore assigned table IDs) is deterministic.
func ReadCSVDir(dir string) ([]*Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	tables := make([]*Table, 0, len(paths))
	for _, p := range paths {
		t, err := ReadCSVFile(p)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
