package table

import (
	"fmt"
	"io"
	"strings"
)

// Format writes the table as an aligned text grid, truncating to maxRows
// data rows (negative means all). Used by the CLI's preview mode and by
// examples; wide cells are clipped to keep the grid readable.
func (t *Table) Format(w io.Writer, maxRows int) error {
	const cellCap = 24
	clip := func(s string) string {
		if len(s) > cellCap {
			return s[:cellCap-1] + "…"
		}
		if s == Null {
			return "∅"
		}
		return s
	}
	widths := make([]int, len(t.Columns))
	for c, col := range t.Columns {
		widths[c] = len(clip(col.Name))
	}
	rows := t.Rows
	if maxRows >= 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	for _, row := range rows {
		for c, v := range row {
			if l := len(clip(v)); l > widths[c] {
				widths[c] = l
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Name)
	writeRow := func(cells []string) {
		for c, v := range cells {
			if c > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[c], clip(v))
		}
		sb.WriteByte('\n')
	}
	header := make([]string, len(t.Columns))
	for c, col := range t.Columns {
		header[c] = col.Name
	}
	writeRow(header)
	for c := range t.Columns {
		if c > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[c]))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	if maxRows >= 0 && len(t.Rows) > maxRows {
		fmt.Fprintf(&sb, "… %d more rows\n", len(t.Rows)-maxRows)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
