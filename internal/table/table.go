// Package table defines the relational table model used throughout BLEND:
// named tables with typed columns and string-encoded cells, plus CSV
// import/export and column type inference.
//
// Cells are stored as strings because BLEND's unified index (the AllTables
// fact table, Fig. 3 of the paper) stores every cell value as nvarchar;
// numeric interpretation happens lazily where needed (e.g. quadrant
// computation for the correlation seeker).
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a column's dominant data type.
type Kind int

const (
	// KindString marks a categorical / free-text column.
	KindString Kind = iota
	// KindNumeric marks a column whose non-null cells parse as numbers.
	KindNumeric
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNumeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Null is the in-band representation of a missing value. Empty cells read
// from CSV are nulls.
const Null = ""

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
}

// Table is an in-memory relational table. The zero value is an empty,
// unnamed table ready for use.
type Table struct {
	// Name identifies the table inside a data lake. Lake loaders keep
	// names unique.
	Name string
	// Columns holds per-column metadata, in attribute order.
	Columns []Column
	// Rows holds the cell values; Rows[r][c] is the value of column c in
	// row r. len(Rows[r]) == len(Columns) for every r.
	Rows [][]string
}

// New creates a table with the given name and column names. Column kinds
// default to KindString until InferKinds is called or cells are appended and
// inference is re-run.
func New(name string, columnNames ...string) *Table {
	cols := make([]Column, len(columnNames))
	for i, cn := range columnNames {
		cols[i] = Column{Name: cn, Kind: KindString}
	}
	return &Table{Name: name, Columns: cols}
}

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// Cell returns the value at (row, col). It panics if out of range, matching
// slice semantics.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// IsNull reports whether the cell at (row, col) is missing.
func (t *Table) IsNull(row, col int) bool { return t.Rows[row][col] == Null }

// AppendRow adds a row to the table. It returns an error if the row width
// does not match the number of columns.
func (t *Table) AppendRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("table %q: row has %d cells, want %d", t.Name, len(cells), len(t.Columns))
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return nil
}

// MustAppendRow is AppendRow that panics on width mismatch. It is intended
// for tests and generators where the width is statically known.
func (t *Table) MustAppendRow(cells ...string) {
	if err := t.AppendRow(cells...); err != nil {
		panic(err)
	}
}

// ColumnIndex returns the index of the named column, or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnValues returns a copy of the non-null values of column col, in row
// order.
func (t *Table) ColumnValues(col int) []string {
	out := make([]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		if row[col] != Null {
			out = append(out, row[col])
		}
	}
	return out
}

// DistinctColumnValues returns the set of distinct non-null values of column
// col, in first-appearance order.
func (t *Table) DistinctColumnValues(col int) []string {
	seen := make(map[string]struct{}, len(t.Rows))
	out := make([]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		v := row[col]
		if v == Null {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// NumericColumnValues parses column col as float64s, skipping nulls and
// unparsable cells. The second return value gives, for each returned number,
// the row it came from.
func (t *Table) NumericColumnValues(col int) ([]float64, []int) {
	vals := make([]float64, 0, len(t.Rows))
	rows := make([]int, 0, len(t.Rows))
	for r, row := range t.Rows {
		v := row[col]
		if v == Null {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			continue
		}
		vals = append(vals, f)
		rows = append(rows, r)
	}
	return vals, rows
}

// numericThreshold is the fraction of non-null cells that must parse as
// numbers for a column to be inferred as numeric.
const numericThreshold = 0.9

// InferKinds re-derives every column's Kind from its current cells. A column
// with no non-null cells stays KindString.
func (t *Table) InferKinds() {
	for c := range t.Columns {
		nonNull, numeric := 0, 0
		for _, row := range t.Rows {
			v := row[c]
			if v == Null {
				continue
			}
			nonNull++
			if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				numeric++
			}
		}
		if nonNull > 0 && float64(numeric) >= numericThreshold*float64(nonNull) {
			t.Columns[c].Kind = KindNumeric
		} else {
			t.Columns[c].Kind = KindString
		}
	}
}

// Project returns a new table containing only the given columns, preserving
// row order. Unknown names are an error.
func (t *Table) Project(columnNames ...string) (*Table, error) {
	idx := make([]int, len(columnNames))
	for i, name := range columnNames {
		ci := t.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("table %q: no column %q", t.Name, name)
		}
		idx[i] = ci
	}
	out := &Table{Name: t.Name, Columns: make([]Column, len(idx))}
	for i, ci := range idx {
		out.Columns[i] = t.Columns[ci]
	}
	out.Rows = make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		nr := make([]string, len(idx))
		for i, ci := range idx {
			nr[i] = row[ci]
		}
		out.Rows[r] = nr
	}
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Columns: append([]Column(nil), t.Columns...)}
	out.Rows = make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		out.Rows[r] = append([]string(nil), row...)
	}
	return out
}

// String renders a compact summary, not the full contents.
func (t *Table) String() string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return fmt.Sprintf("%s(%s) [%d rows]", t.Name, strings.Join(names, ", "), len(t.Rows))
}
