package table

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestNewAndAppend(t *testing.T) {
	tb := New("t", "a", "b")
	if tb.NumCols() != 2 || tb.NumRows() != 0 {
		t.Fatalf("got %d cols %d rows", tb.NumCols(), tb.NumRows())
	}
	if err := tb.AppendRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow("only-one"); err == nil {
		t.Fatal("want width-mismatch error")
	}
	if got := tb.Cell(0, 1); got != "2" {
		t.Fatalf("Cell = %q", got)
	}
}

func TestMustAppendRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New("t", "a").MustAppendRow("1", "2")
}

func TestAppendRowCopiesInput(t *testing.T) {
	tb := New("t", "a")
	cells := []string{"x"}
	tb.MustAppendRow(cells...)
	cells[0] = "mutated"
	if tb.Cell(0, 0) != "x" {
		t.Fatal("AppendRow must copy its input")
	}
}

func TestIsNull(t *testing.T) {
	tb := New("t", "a", "b")
	tb.MustAppendRow("", "x")
	if !tb.IsNull(0, 0) || tb.IsNull(0, 1) {
		t.Fatal("null detection wrong")
	}
}

func TestColumnIndex(t *testing.T) {
	tb := New("t", "a", "b")
	if tb.ColumnIndex("b") != 1 {
		t.Fatal("b should be 1")
	}
	if tb.ColumnIndex("zz") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestColumnValuesSkipsNulls(t *testing.T) {
	tb := New("t", "a")
	tb.MustAppendRow("x")
	tb.MustAppendRow("")
	tb.MustAppendRow("y")
	got := tb.ColumnValues(0)
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("got %v", got)
	}
}

func TestDistinctColumnValues(t *testing.T) {
	tb := New("t", "a")
	for _, v := range []string{"x", "y", "x", "", "z", "y"} {
		tb.MustAppendRow(v)
	}
	got := tb.DistinctColumnValues(0)
	if !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Fatalf("got %v", got)
	}
}

func TestNumericColumnValues(t *testing.T) {
	tb := New("t", "n")
	for _, v := range []string{"1.5", "oops", "", " 2 ", "-3"} {
		tb.MustAppendRow(v)
	}
	vals, rows := tb.NumericColumnValues(0)
	if !reflect.DeepEqual(vals, []float64{1.5, 2, -3}) {
		t.Fatalf("vals = %v", vals)
	}
	if !reflect.DeepEqual(rows, []int{0, 3, 4}) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInferKinds(t *testing.T) {
	tb := New("t", "num", "str", "mostlyNum", "empty")
	tb.MustAppendRow("1", "a", "1", "")
	tb.MustAppendRow("2.5", "b", "2", "")
	tb.MustAppendRow("-3", "c3", "3", "")
	tb.MustAppendRow("4e2", "d", "4", "")
	tb.MustAppendRow("5", "e", "5", "")
	tb.MustAppendRow("6", "f", "6", "")
	tb.MustAppendRow("7", "g", "7", "")
	tb.MustAppendRow("8", "h", "8", "")
	tb.MustAppendRow("9", "i", "9", "")
	tb.MustAppendRow("10", "j", "not-a-number", "")
	tb.InferKinds()
	if tb.Columns[0].Kind != KindNumeric {
		t.Error("num should be numeric")
	}
	if tb.Columns[1].Kind != KindString {
		t.Error("str should be string")
	}
	if tb.Columns[2].Kind != KindNumeric {
		t.Error("mostlyNum (9/10 numeric) should be numeric")
	}
	if tb.Columns[3].Kind != KindString {
		t.Error("all-null column should stay string")
	}
}

func TestProject(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.MustAppendRow("1", "2", "3")
	p, err := tb.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Columns[0].Name != "c" || p.Cell(0, 0) != "3" || p.Cell(0, 1) != "1" {
		t.Fatalf("bad projection: %+v", p)
	}
	if _, err := tb.Project("nope"); err == nil {
		t.Fatal("want error for unknown column")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := New("t", "a")
	tb.MustAppendRow("x")
	cl := tb.Clone()
	cl.Rows[0][0] = "changed"
	cl.Columns[0].Name = "renamed"
	if tb.Cell(0, 0) != "x" || tb.Columns[0].Name != "a" {
		t.Fatal("Clone must not share storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := New("rt", "name", "score")
	tb.MustAppendRow("alice", "10")
	tb.MustAppendRow("bob, jr.", "")
	tb.MustAppendRow("quote\"d", "3")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Rows, tb.Rows) {
		t.Fatalf("round trip mismatch:\n%v\n%v", back.Rows, tb.Rows)
	}
	if back.Columns[1].Kind != KindNumeric {
		t.Error("score should be inferred numeric")
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	in := "a,b,c\n1,2\nx,y,z,extra\n"
	tb, err := ReadCSV("r", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.Cell(0, 2) != "" {
		t.Error("short row should be null-padded")
	}
	if tb.Cell(1, 2) != "z" {
		t.Error("long row should be truncated to header width")
	}
}

func TestReadCSVDirDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.csv", "a.csv", "ignore.txt"} {
		tb := New("x", "v")
		tb.MustAppendRow("1")
		if name == "ignore.txt" {
			continue
		}
		if err := tb.WriteCSVFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	tables, err := ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Name != "a" || tables[1].Name != "b" {
		t.Fatalf("got %v tables", tables)
	}
}

func TestStringSummary(t *testing.T) {
	tb := New("t", "a", "b")
	tb.MustAppendRow("1", "2")
	if got := tb.String(); got != "t(a, b) [1 rows]" {
		t.Fatalf("String = %q", got)
	}
}

func TestFormat(t *testing.T) {
	tb := New("demo", "Name", "Amount")
	tb.MustAppendRow("alice", "10")
	tb.MustAppendRow("", "20")
	tb.MustAppendRow("a-very-long-cell-value-that-overflows", "30")
	tb.MustAppendRow("dora", "40")
	var buf bytes.Buffer
	if err := tb.Format(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "Name", "Amount", "alice", "∅", "…", "1 more rows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dora") {
		t.Fatal("maxRows not respected")
	}
	// Unlimited rows.
	buf.Reset()
	if err := tb.Format(&buf, -1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dora") {
		t.Fatal("negative maxRows should print everything")
	}
}
