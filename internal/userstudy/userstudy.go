// Package userstudy regenerates Table IX of the paper from raw
// per-participant responses. Human subjects cannot be re-run offline
// (DESIGN.md §3), so the 18 expert responses are encoded as data consistent
// with the paper's reported aggregates and summarized by the same grouping
// logic (per-sector and overall percentages).
package userstudy

import (
	"fmt"
	"strings"
)

// Sector classifies a participant.
type Sector int

const (
	// Research participants work in academia.
	Research Sector = iota
	// Industry participants work in companies.
	Industry
)

// Storage answers question 6.
type Storage int

// Question 6 answer values.
const (
	StoreDBMS Storage = iota
	StoreFiles
	StoreBoth
)

// API answers questions 8 and 9.
type API int

// Preferred-API values.
const (
	APIBlend API = iota
	APIPython
	APISQL
)

// Task flags for question 3.
const (
	TaskRows = 1 << iota
	TaskCorrelation
	TaskJoin
	TaskKeyword
	TaskMCJoin
)

// Method flags for question 4.
const (
	MethodScripts = 1 << iota
	MethodSQL
	MethodAsking
	MethodOpenSource
	MethodCommercial
)

// Language flags for question 5.
const (
	LangPython = 1 << iota
	LangJava
	LangSQL
	LangCPP
)

// Response is one participant's answers.
type Response struct {
	Sector Sector
	// Q1 is the share of discovery tasks solved within a single search,
	// as a percentage.
	Q1SingleSearch float64
	// Q2 is whether a single discovered table usually suffices.
	Q2SingleTable bool
	// Q3Tasks, Q4Methods, Q5Languages are multi-select bit sets.
	Q3Tasks     int
	Q4Methods   int
	Q5Languages int
	// Q6Storage is where the participant's lake lives.
	Q6Storage Storage
	// Q7UseDBMS is whether they would use a DBMS given indexes and
	// optimizations.
	Q7UseDBMS bool
	// Q8SimpleAPI and Q9ComplexAPI are the preferred APIs.
	Q8SimpleAPI  API
	Q9ComplexAPI API
}

// Responses returns the embedded response set: 9 research + 9 industry
// participants whose aggregates match Table IX.
func Responses() []Response {
	r := func(q1 float64, q2 bool, q3, q4, q5 int, q6 Storage, q8, q9 API) Response {
		return Response{Sector: Research, Q1SingleSearch: q1, Q2SingleTable: q2,
			Q3Tasks: q3, Q4Methods: q4, Q5Languages: q5, Q6Storage: q6,
			Q7UseDBMS: true, Q8SimpleAPI: q8, Q9ComplexAPI: q9}
	}
	i := func(q1 float64, q2 bool, q3, q4, q5 int, q6 Storage, q8, q9 API) Response {
		x := r(q1, q2, q3, q4, q5, q6, q8, q9)
		x.Sector = Industry
		return x
	}
	return []Response{
		// Research: Q1 mean 27.5; 1× yes on Q2; task/method/language
		// counts per Table IX (3×rows, 4×corr, 4×join, 4×kw, 3×mc;
		// 9×scripts, 4×sql, 3×asking, 5×oss, 2×commercial; 9×py, 7×java,
		// 7×sql, 5×cpp; storage 3×dbms, 4×files, 2×both; Q8 3×blend,
		// 2×python, 4×sql; Q9 8×blend, 1×python).
		r(10.0, true, TaskRows|TaskCorrelation, MethodScripts|MethodSQL|MethodOpenSource, LangPython|LangJava|LangSQL, StoreDBMS, APIBlend, APIBlend),
		r(15.0, false, TaskRows|TaskJoin, MethodScripts|MethodAsking, LangPython|LangJava|LangSQL|LangCPP, StoreFiles, APISQL, APIBlend),
		r(20.0, false, TaskRows|TaskKeyword, MethodScripts|MethodSQL, LangPython|LangJava|LangSQL, StoreFiles, APISQL, APIBlend),
		r(25.0, false, TaskCorrelation|TaskMCJoin, MethodScripts|MethodOpenSource, LangPython|LangJava|LangCPP, StoreDBMS, APIBlend, APIBlend),
		r(30.0, false, TaskCorrelation|TaskJoin, MethodScripts|MethodAsking|MethodOpenSource, LangPython|LangSQL|LangCPP, StoreFiles, APIPython, APIBlend),
		r(35.0, false, TaskCorrelation|TaskKeyword, MethodScripts|MethodSQL|MethodCommercial, LangPython|LangJava|LangSQL, StoreDBMS, APISQL, APIPython),
		r(40.0, false, TaskJoin|TaskMCJoin, MethodScripts|MethodOpenSource, LangPython|LangJava|LangCPP, StoreFiles, APIBlend, APIBlend),
		r(27.5, false, TaskJoin|TaskKeyword, MethodScripts|MethodSQL|MethodCommercial, LangPython|LangSQL|LangCPP, StoreBoth, APIPython, APIBlend),
		r(45.0, false, TaskKeyword|TaskMCJoin, MethodScripts|MethodAsking|MethodOpenSource, LangPython|LangJava|LangSQL, StoreBoth, APISQL, APIBlend),
		// Industry: Q1 mean 38.8; 0× yes on Q2; counts per Table IX
		// (6×rows, 5×corr, 3×join, 3×kw, 2×mc; 5×scripts, 5×sql,
		// 5×asking, 3×oss, 2×commercial; 8×py, 8×java, 7×sql, 7×cpp;
		// storage 4×dbms, 0×files, 5×both; Q8 5×blend, 1×python, 3×sql;
		// Q9 8×blend, 1×python).
		i(20.0, false, TaskRows|TaskCorrelation, MethodScripts|MethodSQL, LangPython|LangJava|LangSQL|LangCPP, StoreDBMS, APIBlend, APIBlend),
		i(30.0, false, TaskRows|TaskCorrelation, MethodScripts|MethodAsking, LangPython|LangJava|LangSQL|LangCPP, StoreBoth, APIBlend, APIBlend),
		i(40.0, false, TaskRows|TaskCorrelation, MethodSQL|MethodAsking, LangPython|LangJava|LangSQL|LangCPP, StoreDBMS, APISQL, APIBlend),
		i(50.0, false, TaskRows|TaskCorrelation, MethodScripts|MethodOpenSource, LangPython|LangJava|LangSQL, StoreBoth, APIBlend, APIBlend),
		i(35.0, false, TaskRows|TaskCorrelation, MethodSQL|MethodAsking|MethodCommercial, LangPython|LangJava|LangCPP, StoreDBMS, APIPython, APIPython),
		i(45.0, false, TaskRows|TaskJoin, MethodScripts|MethodOpenSource, LangPython|LangJava|LangSQL|LangCPP, StoreBoth, APIBlend, APIBlend),
		i(25.0, false, TaskJoin|TaskKeyword, MethodSQL|MethodAsking, LangPython|LangJava|LangSQL|LangCPP, StoreDBMS, APISQL, APIBlend),
		i(55.0, false, TaskJoin|TaskKeyword|TaskMCJoin, MethodScripts|MethodSQL|MethodCommercial, LangJava|LangSQL|LangCPP, StoreBoth, APIBlend, APIBlend),
		i(49.2, false, TaskKeyword|TaskMCJoin, MethodSQL|MethodAsking|MethodOpenSource, LangPython|LangJava|LangCPP, StoreBoth, APISQL, APIBlend),
	}
}

// Summary aggregates responses by sector.
type Summary struct {
	Participants       [3]int     // research, industry, all
	Q1SingleSearchMean [3]float64 // percent
	Q2Yes              [3]float64 // percent answering yes
	Q3Tasks            map[string][3]float64
	Q4Methods          map[string][3]float64
	Q5Languages        map[string][3]float64
	Q6Storage          map[string][3]float64
	Q7Yes              [3]float64
	Q8API              map[string][3]float64
	Q9API              map[string][3]float64
}

const (
	colResearch = 0
	colIndustry = 1
	colAll      = 2
)

// Aggregate computes the Table IX summary from responses.
func Aggregate(rs []Response) *Summary {
	s := &Summary{
		Q3Tasks:     map[string][3]float64{},
		Q4Methods:   map[string][3]float64{},
		Q5Languages: map[string][3]float64{},
		Q6Storage:   map[string][3]float64{},
		Q8API:       map[string][3]float64{},
		Q9API:       map[string][3]float64{},
	}
	var q1Sum [3]float64
	var q2Yes, q7Yes [3]int
	count := func(m map[string][3]float64, key string, cols []int) {
		v := m[key]
		for _, c := range cols {
			v[c]++
		}
		m[key] = v
	}
	for _, r := range rs {
		cols := []int{colAll}
		if r.Sector == Research {
			cols = append(cols, colResearch)
		} else {
			cols = append(cols, colIndustry)
		}
		for _, c := range cols {
			s.Participants[c]++
			q1Sum[c] += r.Q1SingleSearch
			if r.Q2SingleTable {
				q2Yes[c]++
			}
			if r.Q7UseDBMS {
				q7Yes[c]++
			}
		}
		flagCount := func(m map[string][3]float64, flags int, names map[int]string) {
			for bit, name := range names {
				if flags&bit != 0 {
					count(m, name, cols)
				}
			}
		}
		flagCount(s.Q3Tasks, r.Q3Tasks, map[int]string{
			TaskRows: "Discovery for rows", TaskCorrelation: "Correlation discovery",
			TaskJoin: "Join discovery", TaskKeyword: "Keyword search",
			TaskMCJoin: "Multi-column join discovery",
		})
		flagCount(s.Q4Methods, r.Q4Methods, map[int]string{
			MethodScripts: "With custom scripts", MethodSQL: "Writing SQL queries",
			MethodAsking: "Asking people", MethodOpenSource: "Using open source tools",
			MethodCommercial: "Using commercial tools",
		})
		flagCount(s.Q5Languages, r.Q5Languages, map[int]string{
			LangPython: "Python", LangJava: "Java", LangSQL: "SQL", LangCPP: "C++",
		})
		count(s.Q6Storage, storageName(r.Q6Storage), cols)
		count(s.Q8API, apiName(r.Q8SimpleAPI), cols)
		count(s.Q9API, apiName(r.Q9ComplexAPI), cols)
	}
	for c := 0; c < 3; c++ {
		n := float64(s.Participants[c])
		if n == 0 {
			continue
		}
		s.Q1SingleSearchMean[c] = q1Sum[c] / n
		s.Q2Yes[c] = 100 * float64(q2Yes[c]) / n
		s.Q7Yes[c] = 100 * float64(q7Yes[c]) / n
		toPct := func(m map[string][3]float64) {
			for k, v := range m {
				v[c] = 100 * v[c] / n
				m[k] = v
			}
		}
		toPct(s.Q3Tasks)
		toPct(s.Q4Methods)
		toPct(s.Q5Languages)
		toPct(s.Q6Storage)
		toPct(s.Q8API)
		toPct(s.Q9API)
	}
	return s
}

func storageName(st Storage) string {
	switch st {
	case StoreDBMS:
		return "DBMS"
	case StoreFiles:
		return "File systems"
	default:
		return "Both"
	}
}

func apiName(a API) string {
	switch a {
	case APIBlend:
		return "BLEND"
	case APIPython:
		return "Python"
	default:
		return "SQL"
	}
}

// Format renders the summary as a Table IX-style text table.
func (s *Summary) Format() string {
	var sb strings.Builder
	row := func(label string, v [3]float64) {
		fmt.Fprintf(&sb, "  %-32s %6.1f%% %6.1f%% %6.1f%%\n", label, v[colResearch], v[colIndustry], v[colAll])
	}
	fmt.Fprintf(&sb, "  %-32s %7s %7s %7s\n", "", "Research", "Industry", "All")
	fmt.Fprintf(&sb, "  %-32s %7d %8d %7d\n", "Participants",
		s.Participants[colResearch], s.Participants[colIndustry], s.Participants[colAll])
	row("Q1 single-search success", s.Q1SingleSearchMean)
	row("Q2 single table sufficient (yes)", s.Q2Yes)
	section := func(title string, m map[string][3]float64, order []string) {
		fmt.Fprintf(&sb, "  %s\n", title)
		for _, k := range order {
			row("  "+k, m[k])
		}
	}
	section("Q3 most frequent tasks", s.Q3Tasks, []string{
		"Discovery for rows", "Correlation discovery", "Join discovery",
		"Keyword search", "Multi-column join discovery"})
	section("Q4 how tasks are solved", s.Q4Methods, []string{
		"With custom scripts", "Writing SQL queries", "Asking people",
		"Using open source tools", "Using commercial tools"})
	section("Q5 preferred languages", s.Q5Languages, []string{"Python", "Java", "SQL", "C++"})
	section("Q6 lake storage", s.Q6Storage, []string{"DBMS", "File systems", "Both"})
	row("Q7 would use DBMS (yes)", s.Q7Yes)
	section("Q8 preferred API, simple task", s.Q8API, []string{"BLEND", "Python", "SQL"})
	section("Q9 preferred API, complex task", s.Q9API, []string{"BLEND", "Python"})
	return sb.String()
}
