package userstudy

import (
	"math"
	"strings"
	"testing"
)

func TestEighteenParticipants(t *testing.T) {
	rs := Responses()
	if len(rs) != 18 {
		t.Fatalf("participants = %d, want 18", len(rs))
	}
	research, industry := 0, 0
	for _, r := range rs {
		if r.Sector == Research {
			research++
		} else {
			industry++
		}
	}
	if research != 9 || industry != 9 {
		t.Fatalf("sector split %d/%d, want 9/9", research, industry)
	}
}

func approx(got, want float64) bool { return math.Abs(got-want) < 0.75 }

func TestAggregatesMatchTableIX(t *testing.T) {
	s := Aggregate(Responses())
	// Q1: 27.5% research, 38.8% industry, 33.3% overall.
	if !approx(s.Q1SingleSearchMean[0], 27.5) || !approx(s.Q1SingleSearchMean[1], 38.8) || !approx(s.Q1SingleSearchMean[2], 33.2) {
		t.Fatalf("Q1 = %v", s.Q1SingleSearchMean)
	}
	// Q2: 11% research yes, 0% industry yes.
	if !approx(s.Q2Yes[0], 11.1) || s.Q2Yes[1] != 0 {
		t.Fatalf("Q2 = %v", s.Q2Yes)
	}
	// Q3: rows 33/67/50, correlation 44/56/50.
	if v := s.Q3Tasks["Discovery for rows"]; !approx(v[0], 33.3) || !approx(v[1], 66.7) || !approx(v[2], 50) {
		t.Fatalf("Q3 rows = %v", v)
	}
	if v := s.Q3Tasks["Correlation discovery"]; !approx(v[0], 44.4) || !approx(v[1], 55.6) {
		t.Fatalf("Q3 correlation = %v", v)
	}
	// Q4: custom scripts 100/56/78.
	if v := s.Q4Methods["With custom scripts"]; !approx(v[0], 100) || !approx(v[1], 55.6) || !approx(v[2], 77.8) {
		t.Fatalf("Q4 scripts = %v", v)
	}
	// Q5: Python 100/89/94.
	if v := s.Q5Languages["Python"]; !approx(v[0], 100) || !approx(v[1], 88.9) || !approx(v[2], 94.4) {
		t.Fatalf("Q5 python = %v", v)
	}
	// Q6: industry never files-only.
	if v := s.Q6Storage["File systems"]; v[1] != 0 || !approx(v[0], 44.4) {
		t.Fatalf("Q6 files = %v", v)
	}
	// Q7: unanimous.
	if s.Q7Yes[0] != 100 || s.Q7Yes[1] != 100 || s.Q7Yes[2] != 100 {
		t.Fatalf("Q7 = %v", s.Q7Yes)
	}
	// Q8: BLEND preferred by 44% overall; Q9 by 89%.
	if v := s.Q8API["BLEND"]; !approx(v[2], 44.4) {
		t.Fatalf("Q8 BLEND = %v", v)
	}
	if v := s.Q9API["BLEND"]; !approx(v[0], 88.9) || !approx(v[1], 88.9) {
		t.Fatalf("Q9 BLEND = %v", v)
	}
}

func TestFormatContainsAllQuestions(t *testing.T) {
	out := Aggregate(Responses()).Format()
	for _, want := range []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Participants", "BLEND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}
