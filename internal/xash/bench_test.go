package xash

import (
	"fmt"
	"testing"
)

func BenchmarkHash(b *testing.B) {
	values := make([]string, 64)
	for i := range values {
		values[i] = fmt.Sprintf("value-%d-%x", i, i*7919)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(values[i%len(values)])
	}
}

func BenchmarkHashRow(b *testing.B) {
	row := []string{"Tom Riddle", "2022", "IT", "London", "full-time"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashRow(row)
	}
}

func BenchmarkContains(b *testing.B) {
	super := HashRow([]string{"a", "b", "c", "d", "e"})
	probe := HashRow([]string{"a", "c"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !super.Contains(probe) {
			b.Fatal("must contain")
		}
	}
}

// BenchmarkFilterSelectivity reports (as custom metrics) how selective the
// signature is: the fraction of random non-matching rows rejected —
// the design property Table V depends on.
func BenchmarkFilterSelectivity(b *testing.B) {
	rows := make([]Key, 512)
	for i := range rows {
		rows[i] = HashRow([]string{
			fmt.Sprintf("alpha%04d", i), fmt.Sprintf("beta%04d", i*3), fmt.Sprintf("%d", i),
		})
	}
	probe := HashRow([]string{"gamma9999", "delta8888"})
	rejected := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !rows[i%len(rows)].Contains(probe) {
			rejected++
		}
	}
	if b.N > 0 {
		b.ReportMetric(float64(rejected)/float64(b.N), "reject-rate")
	}
}
