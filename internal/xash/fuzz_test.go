package xash

import "testing"

// FuzzXashKey fuzzes the bloom-filter contract the MC seeker's pruning
// correctness rests on: if every cell of a query row occurs among a
// candidate row's cells (exact set cover), the candidate's super key must
// contain the query row's key — containment never false-negatives, so the
// filter can only trim work, never drop a true match. The fuzzer builds
// the candidate row from four cells and derives query rows as subsets
// selected by a bitmask.
func FuzzXashKey(f *testing.F) {
	seeds := []struct {
		a, b, c, d string
		mask       uint8
	}{
		{"HR", "Firenze", "2022", "33", 0b0011},
		{"", "", "", "", 0b1111},
		{"a", "a", "a", "a", 0b1010},
		{"it's", "quoted", "x\x00y", "\xff\xfe", 0b0101},
		{"long-value-with-many-characters", "短", "émoji🙂", "0", 0b1001},
	}
	for _, s := range seeds {
		f.Add(s.a, s.b, s.c, s.d, s.mask)
	}
	f.Fuzz(func(t *testing.T, a, b, c, d string, mask uint8) {
		cells := []string{a, b, c, d}
		super := HashRow(cells)

		// Query = the subset of cells selected by mask: always an exact
		// set cover, so containment must hold.
		var query []string
		for i, cell := range cells {
			if mask&(1<<i) != 0 {
				query = append(query, cell)
			}
		}
		if qk := HashRow(query); !super.Contains(qk) {
			t.Fatalf("false negative: row %q does not contain subset %q (super=%+v query=%+v)",
				cells, query, super, qk)
		}

		// Per-cell invariants: every non-empty cell's own key is covered by
		// the row key; the empty value hashes to zero; keys are bounded by
		// psi character bits plus one length bit.
		for _, cell := range cells {
			k := Hash(cell)
			if !super.Contains(k) {
				t.Fatalf("row key drops cell %q", cell)
			}
			if cell == "" && !k.IsZero() {
				t.Fatalf("empty value hashed to %+v", k)
			}
			if n := k.OnesCount(); n > psi+1 {
				t.Fatalf("key of %q sets %d bits, max %d", cell, n, psi+1)
			}
		}

		// Determinism: hashing is a pure function.
		if again := HashRow(cells); again != super {
			t.Fatalf("HashRow not deterministic: %+v vs %+v", again, super)
		}
	})
}
