// Package xash implements the XASH super key of MATE (Esmailoghli et al.,
// VLDB 2022), the hash-based row signature BLEND stores in the SuperKey
// column of its AllTables index (Fig. 3 of the BLEND paper).
//
// A Key is a 128-bit signature. Each cell value contributes a small set of
// bits derived from its rarest characters, their positions, and the value
// length; a row's super key is the bitwise OR of the keys of its cells.
// The signature acts as a bloom filter for multi-column join discovery:
// if a candidate row contains every value of a query row, then every bit of
// the query row's key is set in the candidate's super key. The converse can
// fail, so matches are validated exactly afterwards — recall is 100% and
// false positives are filtered at the application level, exactly as in §VI
// of the BLEND paper.
package xash

import "math/bits"

// Key is a 128-bit XASH signature, little-endian across the two words
// (bit i lives in word i/64).
type Key struct {
	Lo, Hi uint64
}

// Zero is the empty signature.
var Zero Key

// Or returns the union of two signatures.
func (k Key) Or(o Key) Key { return Key{Lo: k.Lo | o.Lo, Hi: k.Hi | o.Hi} }

// Contains reports whether every bit set in q is also set in k. This is the
// bloom-filter subset test used to prune non-joinable rows.
func (k Key) Contains(q Key) bool {
	return k.Lo&q.Lo == q.Lo && k.Hi&q.Hi == q.Hi
}

// IsZero reports whether no bit is set.
func (k Key) IsZero() bool { return k.Lo == 0 && k.Hi == 0 }

// OnesCount returns the number of set bits.
func (k Key) OnesCount() int {
	return bits.OnesCount64(k.Lo) + bits.OnesCount64(k.Hi)
}

func (k *Key) setBit(i uint) {
	if i < 64 {
		k.Lo |= 1 << i
	} else {
		k.Hi |= 1 << (i - 64)
	}
}

const (
	// keyBits is the total signature width.
	keyBits = 128
	// lenBits is the number of trailing bits reserved for the value-length
	// segment; charBits = keyBits - lenBits encode character/position pairs.
	lenBits  = 8
	charBits = keyBits - lenBits
	// psi is the number of rarest characters of a value that contribute
	// bits. MATE found a small number of rare characters gives the best
	// selectivity/width trade-off.
	psi = 3
	// posBuckets discretizes a character's position within the value.
	posBuckets = 8
)

// charFreqRank ranks bytes by approximate corpus frequency: rarer bytes get
// lower ranks and are preferred as signature characters, which maximizes
// the discriminative power of the few bits each value sets.
var charFreqRank [256]int

func init() {
	// Approximate descending frequency order for English-ish table data:
	// common letters and digits first (high rank = frequent = avoided).
	frequent := " eationsrlhdcumpfg0123456789byw.vk-_TSAxCMjIBqPDRLzNEGFHKOW'JUV,YQ&XZ%$#@!"
	rank := 255
	for _, c := range []byte(frequent) {
		if charFreqRank[c] == 0 {
			charFreqRank[c] = rank
			rank--
		}
	}
	// Every byte not listed is rare: give it a low (preferred) rank keyed
	// by its code so that ordering is total and deterministic.
	for c := 0; c < 256; c++ {
		if charFreqRank[c] == 0 {
			charFreqRank[c] = -256 + c
		}
	}
}

// Hash computes the XASH key of a single cell value.
//
// The rarest psi characters of the value (ties broken by position) each set
// one bit in the character segment, at an index derived from the character
// identity and its discretized position. One extra bit in the length
// segment encodes len(value) mod lenBits, which lets the subset test reject
// rows whose value lengths cannot line up.
func Hash(value string) Key {
	var k Key
	if len(value) == 0 {
		return k
	}
	// Select up to psi distinct characters with the lowest frequency rank.
	type cand struct {
		rank int
		pos  int
		c    byte
	}
	var chosen [psi]cand
	n := 0
	var seen [256]bool // stack-allocated distinct-character filter
	for i := 0; i < len(value); i++ {
		c := value[i]
		if seen[c] {
			continue
		}
		seen[c] = true
		cd := cand{rank: charFreqRank[c], pos: i, c: c}
		if n < psi {
			chosen[n] = cd
			n++
			continue
		}
		// Replace the most frequent chosen candidate if cd is rarer.
		worst := 0
		for j := 1; j < psi; j++ {
			if chosen[j].rank > chosen[worst].rank {
				worst = j
			}
		}
		if cd.rank < chosen[worst].rank {
			chosen[worst] = cd
		}
	}
	for i := 0; i < n; i++ {
		cd := chosen[i]
		bucket := cd.pos * posBuckets / len(value)
		bit := (uint(cd.c)*uint(posBuckets) + uint(bucket)) * 2654435761 % charBits
		k.setBit(bit)
	}
	k.setBit(charBits + uint(len(value))%lenBits)
	return k
}

// HashRow computes the super key of a row: the OR of the XASH keys of all
// its non-empty cells.
func HashRow(cells []string) Key {
	var k Key
	for _, c := range cells {
		if c == "" {
			continue
		}
		k = k.Or(Hash(c))
	}
	return k
}
