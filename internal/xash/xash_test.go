package xash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	if Hash("hello") != Hash("hello") {
		t.Fatal("hash must be deterministic")
	}
}

func TestHashEmpty(t *testing.T) {
	if !Hash("").IsZero() {
		t.Fatal("empty value must hash to zero")
	}
}

func TestHashSetsFewBits(t *testing.T) {
	for _, v := range []string{"a", "department", "Tom Riddle", "12345", "x"} {
		n := Hash(v).OnesCount()
		if n < 1 || n > psi+1 {
			t.Fatalf("Hash(%q) sets %d bits, want 1..%d", v, n, psi+1)
		}
	}
}

func TestContainsReflexive(t *testing.T) {
	k := Hash("some value")
	if !k.Contains(k) {
		t.Fatal("a key must contain itself")
	}
	if !k.Contains(Zero) {
		t.Fatal("every key contains the zero key")
	}
	if Zero.Contains(k) {
		t.Fatal("zero key must not contain a non-zero key")
	}
}

func TestOrMonotone(t *testing.T) {
	a, b := Hash("alpha"), Hash("beta")
	u := a.Or(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatal("union must contain both operands")
	}
}

// TestSupersetProperty is the core bloom-filter guarantee: if a row contains
// every value of a query sub-row, the row's super key contains the query's
// key, so XASH filtering never loses a true match (100% recall).
func TestSupersetProperty(t *testing.T) {
	f := func(cells []string, extra []string) bool {
		if len(cells) == 0 {
			return true
		}
		row := append(append([]string(nil), cells...), extra...)
		q := HashRow(cells)
		r := HashRow(row)
		return r.Contains(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetOfRowHash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"HR", "Firenze", "Marketing", "IT", "Tom Riddle", "2024", "33", "Sales"}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		row := make([]string, n)
		for i := range row {
			row[i] = words[rng.Intn(len(words))]
		}
		super := HashRow(row)
		// Any subset of the row's values must pass the filter.
		sub := row[:1+rng.Intn(n)]
		if !super.Contains(HashRow(sub)) {
			t.Fatalf("row %v does not contain subset %v", row, sub)
		}
	}
}

func TestFilterDiscriminates(t *testing.T) {
	// The filter must reject a decent share of non-matching rows; otherwise
	// it prunes nothing. Build disjoint vocabulary rows and probe.
	rng := rand.New(rand.NewSource(11))
	vocabA := []string{"apple", "banana", "cherry", "durian", "elderberry"}
	vocabB := []string{"Zurich", "Quebec", "Xiamen", "Krakow", "Jakarta"}
	rejected := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		rowA := []string{vocabA[rng.Intn(len(vocabA))], vocabA[rng.Intn(len(vocabA))]}
		rowB := []string{vocabB[rng.Intn(len(vocabB))], vocabB[rng.Intn(len(vocabB))]}
		if !HashRow(rowB).Contains(HashRow(rowA)) {
			rejected++
		}
	}
	if rejected < trials/2 {
		t.Fatalf("filter rejected only %d/%d disjoint rows; too many false positives", rejected, trials)
	}
}

func TestHashRowSkipsNulls(t *testing.T) {
	if HashRow([]string{"", "x", ""}) != Hash("x") {
		t.Fatal("nulls must not contribute bits")
	}
}

func TestLengthSegment(t *testing.T) {
	// Values of different lengths mod lenBits set different length bits, so
	// their keys differ even with identical rare characters.
	a := Hash("zq")
	b := Hash("zqzqz") // different length bucket
	if a == b {
		t.Fatal("length segment should separate these keys")
	}
}

func TestOnesCountMatchesWords(t *testing.T) {
	k := Key{Lo: 0b1011, Hi: 0b1}
	if k.OnesCount() != 4 {
		t.Fatalf("OnesCount = %d", k.OnesCount())
	}
}
