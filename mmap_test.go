package blend

// End-to-end differential coverage for the mmap open path: a saved index
// opened with the default lazy mapping and with WithMmap(false) must be
// indistinguishable through the public query and maintenance surfaces.

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"blend/internal/datalake"
)

// mmapLakePath builds a moderately sized sharded lake, saves it, and
// returns the index path plus a seeker-friendly sample of its vocabulary.
func mmapLakePath(t *testing.T) (string, []string) {
	t.Helper()
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "mmap-e2e", NumTables: 24, ColsPerTable: 4, RowsPerTable: 40,
		VocabSize: 1200, Seed: 41,
	})
	d := IndexTables(ColumnStore, lake.Tables, WithShards(4))
	path := filepath.Join(t.TempDir(), "lake.blend")
	if err := d.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	vals := lake.Vocab[:6]
	return path, vals
}

func runMmapPlan(t *testing.T, d *Discovery, vals []string) *Result {
	t.Helper()
	p := NewPlan()
	p.MustAddSeeker("sc", SC(vals[:3], 8))
	p.MustAddSeeker("kw", KW(vals[3:], 8))
	p.MustAddSeeker("mc", MC([][]string{{vals[0], vals[1]}}, 8))
	p.MustAddCombiner("all", Union(8), "sc", "kw", "mc")
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOpenIndexMmapMatchesEager runs the same seekers and plan against
// both open modes and compares rankings, then applies the same
// maintenance sequence to both and compares again across a save/reopen.
func TestOpenIndexMmapMatchesEager(t *testing.T) {
	path, vals := mmapLakePath(t)
	eager, err := OpenIndex(path, WithMmap(false))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	if eager.NumTables() != mapped.NumTables() || eager.NumShards() != mapped.NumShards() {
		t.Fatalf("shape: eager %d/%d tables/shards, mapped %d/%d",
			eager.NumTables(), eager.NumShards(), mapped.NumTables(), mapped.NumShards())
	}
	st := mapped.Stats()
	if st.MappedBytes <= 0 {
		t.Fatalf("mapped index reports MappedBytes = %d", st.MappedBytes)
	}
	if eager.Stats().MappedBytes != 0 {
		t.Fatal("eager index reports a mapping")
	}

	for _, s := range []Seeker{SC(vals[:3], 8), KW(vals[3:], 8), MC([][]string{{vals[0], vals[1]}}, 8)} {
		want, err := eager.Seek(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mapped.Seek(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seeker results diverge: eager %v, mapped %v", want, got)
		}
	}
	if w, g := runMmapPlan(t, eager, vals), runMmapPlan(t, mapped, vals); !reflect.DeepEqual(w.Tables, g.Tables) {
		t.Fatalf("plan results diverge: eager %v, mapped %v", w.Tables, g.Tables)
	}

	// Maintenance parity: add, remove, compact on both, re-query.
	extra := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "mmap-extra", NumTables: 6, ColsPerTable: 4, RowsPerTable: 20,
		VocabSize: 1200, Seed: 42,
	}).Tables
	if _, err := eager.AddTables(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if _, err := mapped.AddTables(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if err := eager.RemoveTable(3); err != nil {
		t.Fatal(err)
	}
	if err := mapped.RemoveTable(3); err != nil {
		t.Fatal(err)
	}
	if e, m := eager.Compact(), mapped.Compact(); e != m {
		t.Fatalf("Compact removed %d vs %d", e, m)
	}
	if w, g := runMmapPlan(t, eager, vals), runMmapPlan(t, mapped, vals); !reflect.DeepEqual(w.Tables, g.Tables) {
		t.Fatalf("post-maintenance plan results diverge: eager %v, mapped %v", w.Tables, g.Tables)
	}

	// The mutated mapped index persists and reopens identically.
	path2 := filepath.Join(t.TempDir(), "lake2.blend")
	if err := mapped.SaveIndex(path2); err != nil {
		t.Fatal(err)
	}
	back, err := OpenIndex(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if w, g := runMmapPlan(t, eager, vals), runMmapPlan(t, back, vals); !reflect.DeepEqual(w.Tables, g.Tables) {
		t.Fatalf("reopened plan results diverge: eager %v, reopened %v", w.Tables, g.Tables)
	}
}

// TestOpenIndexCloseIdempotent checks Close is safe to call twice and on
// eagerly opened indexes (where there is no mapping to release).
func TestOpenIndexCloseIdempotent(t *testing.T) {
	path, _ := mmapLakePath(t)
	mapped, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	eager, err := OpenIndex(path, WithMmap(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.Close(); err != nil {
		t.Fatal(err)
	}
}
