package blend

import (
	"time"

	"blend/internal/core"
)

// RunOption tunes one Run or Seek call. Options compose orthogonally:
//
//	res, err := d.Run(ctx, plan,
//		blend.WithMaxWorkers(8),
//		blend.WithDeadline(2*time.Second),
//		blend.WithExplain())
//
// The zero configuration (no options) runs the plan sequentially with the
// two-phase optimizer enabled — the paper's default BLEND configuration.
type RunOption func(*runConfig)

type runConfig struct {
	noOptimize bool
	parallel   bool
	maxWorkers int
	deadline   time.Duration
	explain    bool
	asOf       uint64
}

// WithMaxWorkers executes the plan on the concurrent DAG scheduler with a
// worker pool of n (n <= 0 means GOMAXPROCS). Seekers are pure reads, so
// results are identical to sequential execution; only wall-clock
// completion order varies. Plans whose sub-trees are independent — union
// search, multi-objective discovery — gain the most.
func WithMaxWorkers(n int) RunOption {
	return func(c *runConfig) {
		c.parallel = true
		c.maxWorkers = n
	}
}

// WithDeadline bounds the call's wall-clock time: the run's context is
// derived with this timeout, and on expiry the call fails with
// ErrDeadlineExceeded. It composes with (and never extends) a deadline
// already carried by the caller's ctx.
func WithDeadline(d time.Duration) RunOption {
	return func(c *runConfig) { c.deadline = d }
}

// WithoutOptimizer disables operator reordering and query rewriting — the
// paper's B-NO baseline. Results are set-equivalent to optimized runs;
// execution typically scans more of the index.
func WithoutOptimizer() RunOption {
	return func(c *runConfig) { c.noOptimize = true }
}

// WithExplain records, per seeker node, the exact SQL executed against
// the AllTables relation — optimizer rewrites included — into
// Result.SQLByNode, at negligible cost.
func WithExplain() RunOption {
	return func(c *runConfig) { c.explain = true }
}

// WithAsOf executes the call against retained historical generation gen
// instead of the current index state (time travel): the query sees the
// lake exactly as it was when generation gen was published, regardless of
// ingestion since. Zero means current. A generation that has fallen out
// of — or never entered — the retention window (see
// Discovery.SetRetention) fails with ErrGenerationGone before anything
// executes. Ignored by Snapshot.Run, where the handle already fixes the
// generation.
func WithAsOf(gen uint64) RunOption {
	return func(c *runConfig) { c.asOf = gen }
}

// coreOptions folds the functional options into the engine's option
// struct.
func coreOptions(opts []RunOption) (runConfig, core.RunOptions) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg, core.RunOptions{
		Optimize:   !cfg.noOptimize,
		Parallel:   cfg.parallel,
		MaxWorkers: cfg.maxWorkers,
		Explain:    cfg.explain,
		AsOf:       cfg.asOf,
	}
}
