#!/usr/bin/env bash
# bench.sh runs the seeker/service benchmarks with -benchmem and emits
# BENCH_PR3.json: every benchmark's ns/op, B/op, and allocs/op, plus the
# native-vs-SQL speedup for each *NativePath/*SQLPath pair. CI runs it as a
# non-blocking job (make bench) so the perf trajectory is tracked per PR.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_PR3.json}
BENCHTIME=${BENCHTIME:-500x}
PATTERN='SCSeeker|KWSeeker|UnionPlan|SeekerResultCache|ServeQuery|ServeSeek'

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running seeker benchmarks (-benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW" >&2
echo "running service benchmarks..." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/service/ | tee -a "$RAW" >&2

awk -v out="$OUT" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters[name] = $2
    ns[name] = $3
    bytes[name] = $5
    allocs[name] = $7
    order[n++] = name
}
END {
    printf "{\n  \"pr\": 3,\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime > out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, iters[name], ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "") >> out
    }
    printf "  ],\n  \"native_vs_sql_speedup\": {\n" >> out
    first = 1
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name ~ /SQLPath$/) {
            base = name
            sub(/SQLPath$/, "NativePath", name)
            if (name in ns && ns[name] > 0) {
                if (!first) printf ",\n" >> out
                first = 0
                printf "    \"%s\": {\"sql_ns_per_op\": %s, \"native_ns_per_op\": %s, \"speedup\": %.2f, \"allocs_sql\": %s, \"allocs_native\": %s}", \
                    name, ns[base], ns[name], ns[base] / ns[name], allocs[base], allocs[name] >> out
            }
        }
    }
    printf "\n  }\n}\n" >> out
}' "$RAW"

echo "wrote $OUT" >&2
