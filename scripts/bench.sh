#!/usr/bin/env bash
# bench.sh runs the seeker/service/ingest benchmarks with -benchmem and
# emits BENCH.json: commit + date + host metadata, every benchmark's
# ns/op, B/op, and allocs/op, the native-vs-SQL speedup for each
# *NativePath/*SQLPath pair, the multi-column seeker's native-vs-SQL
# pairing (mc_native_speedup, from BenchmarkMCNative/BenchmarkMCSQL and
# their sharded variants), the correlation seeker's native-vs-SQL pairing
# (corr_native_speedup, from BenchmarkCorrSeeker{Native,SQL}Path), the
# columnar minisql executor against its frozen row-at-a-time reference
# (minisql_columnar_speedup, from BenchmarkMinisql{Columnar,RowAtATime} —
# the headline there is the allocs ratio), the bulk-ingest speedup of the batched
# write path over the sequential AddTable loop, the cold-open speedup of
# the v4 mmap path over an eager v3 load (open_speedup), the on-disk
# size of the same lake in both formats (index_bytes_on_disk), and the
# snapshot-isolation headline (read_under_ingest_speedup): seek latency
# on a quiescent index vs the same seeks while a writer continuously
# publishes generations — held near 1.0 by MVCC reads never taking the
# engine lock after pinning. CI runs
# it as a
# non-blocking job (make bench), uploads the artifact, and diffs it
# against the previous main run with scripts/benchdelta.sh.
#
# The output file carries its own provenance (commit, date), so one stable
# name works across PRs; per-PR snapshots from before this scheme
# (BENCH_PR3.json, …) remain in the repo as loadable history — benchdelta
# accepts either shape.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH.json}
BENCHTIME=${BENCHTIME:-500x}
PATTERN='SCSeeker|KWSeeker|MCNative|MCSQL|CorrSeeker|UnionPlan|SeekerResultCache|ServeQuery|ServeSeek|BulkIngest|OpenIndexCold|MinisqlColumnar|MinisqlRowAtATime|ReadQuiescent|ConcurrentReadDuringIngest'

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%FT%TZ)
GOVER=$(go env GOVERSION 2>/dev/null || echo unknown)
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running seeker/ingest benchmarks (-benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW" >&2
echo "running service benchmarks..." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/service/ | tee -a "$RAW" >&2
echo "running minisql executor ablation..." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/minisql/ | tee -a "$RAW" >&2

awk -v out="$OUT" -v benchtime="$BENCHTIME" -v commit="$COMMIT" -v date="$DATE" \
    -v gover="$GOVER" -v cores="$CORES" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters[name] = $2
    # Everything after the iteration count is (value, unit) pairs; custom
    # b.ReportMetric units (disk_bytes, workers) interleave with ns/op and
    # the -benchmem pair, so index by unit instead of field position.
    for (i = 3; i + 1 <= NF; i += 2) m[name "|" $(i+1)] = $i
    ns[name] = m[name "|ns/op"]
    bytes[name] = m[name "|B/op"]
    allocs[name] = m[name "|allocs/op"]
    order[n++] = name
}
END {
    printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpu_cores\": %s,\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", \
        commit, date, gover, cores, benchtime > out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, iters[name], ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "") >> out
    }
    printf "  ],\n  \"native_vs_sql_speedup\": {\n" >> out
    first = 1
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name ~ /SQLPath$/) {
            base = name
            sub(/SQLPath$/, "NativePath", name)
            if (name in ns && ns[name] > 0) {
                if (!first) printf ",\n" >> out
                first = 0
                printf "    \"%s\": {\"sql_ns_per_op\": %s, \"native_ns_per_op\": %s, \"speedup\": %.2f, \"allocs_sql\": %s, \"allocs_native\": %s}", \
                    name, ns[base], ns[name], ns[base] / ns[name], allocs[base], allocs[name] >> out
            }
        }
    }
    printf "\n  }" >> out
    mcs = "BenchmarkMCSQL"
    mcn = "BenchmarkMCNative"
    if ((mcs in ns) && (mcn in ns) && ns[mcn] > 0) {
        # The multi-column seeker pairing: native candidate join + XASH
        # pruning + exact validation vs the interpreted Listing 2 join.
        printf ",\n  \"mc_native_speedup\": {\"sql_ns_per_op\": %s, \"native_ns_per_op\": %s, \"speedup\": %.2f, \"allocs_sql\": %s, \"allocs_native\": %s", \
            ns[mcs], ns[mcn], ns[mcs] / ns[mcn], allocs[mcs], allocs[mcn] >> out
        shs = "BenchmarkMCSQLSharded"
        shn = "BenchmarkMCNativeSharded"
        if ((shs in ns) && (shn in ns) && ns[shn] > 0)
            printf ", \"sharded_speedup\": %.2f", ns[shs] / ns[shn] >> out
        printf "}" >> out
    }
    crs = "BenchmarkCorrSeekerSQLPath"
    crn = "BenchmarkCorrSeekerNativePath"
    if ((crs in ns) && (crn in ns) && ns[crn] > 0) {
        # The correlation seeker pairing: native quadrant-fold posting
        # scan + bounded heap vs the interpreted two-way join + grouped
        # QCR aggregation.
        printf ",\n  \"corr_native_speedup\": {\"sql_ns_per_op\": %s, \"native_ns_per_op\": %s, \"speedup\": %.2f, \"allocs_sql\": %s, \"allocs_native\": %s}", \
            ns[crs], ns[crn], ns[crs] / ns[crn], allocs[crs], allocs[crn] >> out
    }
    mqr = "BenchmarkMinisqlRowAtATime"
    mqc = "BenchmarkMinisqlColumnar"
    if ((mqr in ns) && (mqc in ns) && ns[mqc] > 0 && allocs[mqc] > 0) {
        # The minisql fallback ablation: the live columnar executor vs the
        # frozen row-at-a-time reference on the seeker-shaped workload.
        # speedup is wall-clock; allocs_ratio is the headline (column
        # vectors + selection-vector joins vs per-row slices).
        printf ",\n  \"minisql_columnar_speedup\": {\"row_ns_per_op\": %s, \"columnar_ns_per_op\": %s, \"speedup\": %.2f, \"allocs_row\": %s, \"allocs_columnar\": %s, \"allocs_ratio\": %.2f}", \
            ns[mqr], ns[mqc], ns[mqr] / ns[mqc], allocs[mqr], allocs[mqc], allocs[mqr] / allocs[mqc] >> out
    }
    seqn = "BenchmarkBulkIngestSequential"
    batn = "BenchmarkBulkIngestBatch"
    if ((seqn in ns) && (batn in ns) && ns[batn] > 0) {
        # Batched shard-parallel ingest vs the sequential AddTable loop;
        # the parallel component of the speedup scales with cpu_cores.
        # workers is the effective parallelism the benchmark reported
        # (min of the flag, shard count, and GOMAXPROCS), not the flag.
        workers = (batn "|workers" in m) ? m[batn "|workers"] : "null"
        printf ",\n  \"bulk_ingest_speedup\": {\"sequential_ns_per_op\": %s, \"batch_ns_per_op\": %s, \"speedup\": %.2f, \"bytes_sequential\": %s, \"bytes_batch\": %s, \"workers\": %s, \"cpu_cores\": %s}", \
            ns[seqn], ns[batn], ns[seqn] / ns[batn], bytes[seqn], bytes[batn], workers, cores >> out
    }
    v3o = "BenchmarkOpenIndexCold/V3Eager"
    v4o = "BenchmarkOpenIndexCold/V4Mmap"
    if ((v3o in ns) && (v4o in ns) && ns[v4o] > 0) {
        # Cold time-to-queryable: eager v3 decode vs v4 mmap + footer parse.
        printf ",\n  \"open_speedup\": {\"v3_eager_ns_per_op\": %s, \"v4_mmap_ns_per_op\": %s, \"speedup\": %.2f", \
            ns[v3o], ns[v4o], ns[v3o] / ns[v4o] >> out
        v4e = "BenchmarkOpenIndexCold/V4Eager"
        if ((v4e in ns) && ns[v4e] > 0)
            printf ", \"v4_eager_ns_per_op\": %s", ns[v4e] >> out
        printf "}" >> out
    }
    rdq = "BenchmarkReadQuiescent"
    rdi = "BenchmarkConcurrentReadDuringIngest"
    if ((rdq in ns) && (rdi in ns) && ns[rdi] > 0) {
        # Snapshot-isolation headline: parallel seeks on an idle index vs
        # the same seeks while a writer churns generations. speedup is
        # quiescent/under-ingest ns ratio — near 1.0 means readers never
        # stall behind the write path (they pin a generation snapshot and
        # run lock-free); well below 1.0 means ingestion blocks reads.
        printf ",\n  \"read_under_ingest_speedup\": {\"quiescent_ns_per_op\": %s, \"under_ingest_ns_per_op\": %s, \"speedup\": %.2f, \"allocs_quiescent\": %s, \"allocs_under_ingest\": %s}", \
            ns[rdq], ns[rdi], ns[rdq] / ns[rdi], allocs[rdq], allocs[rdi] >> out
    }
    v3b = m[v3o "|disk_bytes"]
    v4b = m[v4o "|disk_bytes"]
    if (v3b > 0 && v4b > 0) {
        # The same lake persisted in both formats; ratio is v3/v4, so
        # > 1 means the segmented varint format is smaller on disk.
        printf ",\n  \"index_bytes_on_disk\": {\"v3_bytes\": %s, \"v4_bytes\": %s, \"ratio\": %.2f}", \
            v3b, v4b, v3b / v4b >> out
    }
    printf "\n}\n" >> out
}' "$RAW"

echo "wrote $OUT" >&2
