#!/usr/bin/env bash
# benchdelta.sh OLD.json NEW.json — print a benchstat-style markdown table
# comparing two bench reports produced by scripts/bench.sh. It reads both
# the current BENCH.json shape (with commit/date metadata) and the legacy
# per-PR snapshots (BENCH_PR3.json), whose "benchmarks" arrays are
# identical. Intended for the CI job summary; always exits 0 so the bench
# job stays non-blocking.
set -uo pipefail

old=${1:-}
new=${2:-}
if [ -z "$old" ] || [ -z "$new" ] || [ ! -f "$old" ] || [ ! -f "$new" ]; then
    echo "_no previous bench report to compare against_"
    exit 0
fi
if ! command -v jq >/dev/null 2>&1; then
    echo "_jq not available; skipping bench delta_"
    exit 0
fi

meta() { # file field
    jq -r ".$2 // \"?\"" "$1" 2>/dev/null || echo "?"
}

echo "### Benchmark delta"
echo
echo "Old: \`$(meta "$old" commit)\` ($(meta "$old" date)) → New: \`$(meta "$new" commit)\` ($(meta "$new" date))"
echo
echo "| benchmark | old ns/op | new ns/op | delta | old allocs | new allocs |"
echo "|---|---:|---:|---:|---:|---:|"

# Join the two benchmark arrays by name; report only names present in both.
jq -rn --slurpfile o "$old" --slurpfile n "$new" '
    ($o[0].benchmarks // [] | map({(.name): .}) | add // {}) as $old
    | ($n[0].benchmarks // [])[]
    | . as $new
    | $old[$new.name] // empty
    | [ $new.name,
        .ns_per_op,
        $new.ns_per_op,
        (if .ns_per_op > 0
            then ((($new.ns_per_op - .ns_per_op) / .ns_per_op * 100 * 10 | round) / 10 | tostring) + "%"
            else "?" end),
        .allocs_per_op,
        $new.allocs_per_op ]
    | "| " + (map(tostring) | join(" | ")) + " |"
' 2>/dev/null || echo "_failed to parse bench reports_"

echo

# Headline derived metrics: correlation fast-path and columnar-executor
# speedups, cold-open speedup, on-disk index size, and read-under-ingest
# isolation, old vs new (reports predating these fields show "n/a").
jq -rn --slurpfile o "$old" --slurpfile n "$new" '
    def x(v): if v == null then "n/a" else (v | tostring) + "x" end;
    def fmt(v): if v == null then "n/a" else (v | tostring) end;
    "Correlation native vs SQL: old speedup "
        + x($o[0].corr_native_speedup.speedup) + " → new speedup "
        + x($n[0].corr_native_speedup.speedup),
    "Minisql columnar vs row-at-a-time: old allocs ratio "
        + x($o[0].minisql_columnar_speedup.allocs_ratio) + " → new allocs ratio "
        + x($n[0].minisql_columnar_speedup.allocs_ratio) + " (wall-clock "
        + x($n[0].minisql_columnar_speedup.speedup) + ")",
    "Cold open (v4 mmap vs v3 eager): old speedup "
        + x($o[0].open_speedup.speedup) + " → new speedup "
        + x($n[0].open_speedup.speedup),
    "On-disk size (v3/v4 ratio): old "
        + x($o[0].index_bytes_on_disk.ratio) + " → new "
        + x($n[0].index_bytes_on_disk.ratio) + " ("
        + fmt($n[0].index_bytes_on_disk.v4_bytes) + " bytes v4)",
    "Read under ingest (quiescent/under-ingest, 1.0 = no reader stall): old "
        + x($o[0].read_under_ingest_speedup.speedup) + " → new "
        + x($n[0].read_under_ingest_speedup.speedup) + " ("
        + fmt($n[0].read_under_ingest_speedup.under_ingest_ns_per_op)
        + " ns/op under ingest)"
' 2>/dev/null || echo "_no open/size metrics to compare_"

echo
echo "_delta = (new − old) / old; negative is faster. Non-blocking: noisy runners make small deltas meaningless._"
exit 0
