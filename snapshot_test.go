package blend

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// snapTable builds a small deterministic table that shares vocabulary
// with the Fig. 1 lake, so seeker results change observably per ingest.
func snapTable(i int) *Table {
	t := NewTable(fmt.Sprintf("Snap%d", i), "Team", "Lead")
	t.MustAppendRow("HR", fmt.Sprintf("Lead%d", i))
	t.MustAppendRow("IT", fmt.Sprintf("Colead%d", i))
	t.MustAppendRow("Finance", "Harry Potter")
	return t
}

// TestSnapshotPinnedUnderConcurrentIngest drives continuous AddTables /
// RemoveTable traffic against concurrent pinned-snapshot queries: a
// pinned snapshot's results never change (no torn reads), repeated reads
// on one snapshot are bit-identical, and the published generation only
// ever moves forward.
func TestSnapshotPinnedUnderConcurrentIngest(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables(), WithShards(2))
	ctx := context.Background()

	pinned, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Release()
	baseline, err := pinned.Seek(ctx, SC(deps, 10))
	if err != nil {
		t.Fatal(err)
	}
	baseGen := pinned.Generation()

	const mutations = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: ingest a fresh table per iteration, removing every third.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < mutations; i++ {
			ids, err := d.AddTables(ctx, []*Table{snapTable(i)})
			if err != nil {
				t.Errorf("add %d: %v", i, err)
				return
			}
			if i%3 == 0 {
				if err := d.RemoveTable(ids[0]); err != nil {
					t.Errorf("remove %d: %v", i, err)
					return
				}
			}
		}
	}()

	// Readers: pin a snapshot, read it twice, require identical results.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := d.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				g := s.Generation()
				if g < lastGen {
					t.Errorf("generation went backwards: %d after %d", g, lastGen)
				}
				lastGen = g
				first, err := s.Seek(ctx, SC(deps, 10))
				if err != nil {
					t.Errorf("seek: %v", err)
					s.Release()
					return
				}
				second, err := s.Seek(ctx, SC(deps, 10))
				if err != nil {
					t.Errorf("re-seek: %v", err)
					s.Release()
					return
				}
				if !reflect.DeepEqual(first, second) {
					t.Errorf("torn read on pinned snapshot gen %d: %v vs %v", g, first, second)
				}
				if s.Generation() != g {
					t.Errorf("pinned snapshot moved: %d -> %d", g, s.Generation())
				}
				s.Release()
			}
		}()
	}

	// Generation monotonicity, observed independently of any pin.
	var prev atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := d.Generation()
			if p := prev.Load(); g < p {
				t.Errorf("published generation regressed: %d after %d", g, p)
				return
			} else if g > p {
				prev.Store(g)
			}
		}
	}()

	wg.Wait()

	// The snapshot pinned before any ingestion still serves its original
	// results at its original generation.
	again, err := pinned.Seek(ctx, SC(deps, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, baseline) {
		t.Fatalf("pinned snapshot results drifted: %v, want %v", again, baseline)
	}
	if pinned.Generation() != baseGen {
		t.Fatalf("pinned generation drifted: %d, want %d", pinned.Generation(), baseGen)
	}
	if got := d.Generation(); got <= baseGen {
		t.Fatalf("current generation %d did not advance past %d", got, baseGen)
	}
}

// TestWithAsOfMatchesLiveResults is the time-travel property test:
// results under WithAsOf(g) are bit-identical to results captured live
// while g was the current generation, across layouts × shard counts ×
// seeker kinds, on both the Seek path and the SnapshotAt handle.
func TestWithAsOfMatchesLiveResults(t *testing.T) {
	ctx := context.Background()
	kinds := map[string]func() Seeker{
		"sc": func() Seeker { return SC(deps, 10) },
		"kw": func() Seeker { return KW(deps, 10) },
		"mc": func() Seeker { return MC([][]string{{"HR"}, {"IT"}}, 10) },
	}
	configs := []struct {
		name   string
		layout Layout
		shards int
	}{
		{"column", ColumnStore, 1},
		{"row", RowStore, 1},
		{"column-sharded", ColumnStore, 3},
		{"row-sharded", RowStore, 3},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			var opts []IndexOption
			if cfg.shards > 1 {
				opts = append(opts, WithShards(cfg.shards))
			}
			d := IndexTables(cfg.layout, fig1Tables(), opts...)
			d.SetRetention(16)

			live := make(map[uint64]map[string]Hits)
			capture := func() {
				g := d.Generation()
				live[g] = make(map[string]Hits, len(kinds))
				for name, mk := range kinds {
					hits, err := d.Seek(ctx, mk())
					if err != nil {
						t.Fatalf("live %s at gen %d: %v", name, g, err)
					}
					live[g][name] = hits
				}
			}

			capture()
			ids, err := d.AddTables(ctx, []*Table{snapTable(0), snapTable(1)})
			if err != nil {
				t.Fatal(err)
			}
			capture()
			if err := d.RemoveTable(ids[0]); err != nil {
				t.Fatal(err)
			}
			capture()
			if _, err := d.AddTables(ctx, []*Table{snapTable(2)}); err != nil {
				t.Fatal(err)
			}
			capture()

			for g, byKind := range live {
				for name, want := range byKind {
					got, err := d.Seek(ctx, kinds[name](), WithAsOf(g))
					if err != nil {
						t.Fatalf("as-of %s at gen %d: %v", name, g, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("as-of %s at gen %d: %v, want live %v", name, g, got, want)
					}
				}
				// The snapshot handle pinned at g serves the same results.
				s, err := d.SnapshotAt(g)
				if err != nil {
					t.Fatalf("SnapshotAt(%d): %v", g, err)
				}
				for name, want := range byKind {
					got, err := s.Seek(ctx, kinds[name]())
					if err != nil {
						t.Fatalf("snapshot %s at gen %d: %v", name, g, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("snapshot %s at gen %d: %v, want %v", name, g, got, want)
					}
				}
				s.Release()
			}

			// Shrinking the window makes old generations unaddressable with
			// the typed generation-gone error.
			d.SetRetention(1)
			oldest := uint64(1)
			if _, err := d.Seek(ctx, SC(deps, 10), WithAsOf(oldest)); !errors.Is(err, ErrGenerationGone) {
				t.Fatalf("evicted generation: err = %v, want ErrGenerationGone", err)
			}
			if _, err := d.SnapshotAt(oldest); !errors.Is(err, ErrGenerationGone) {
				t.Fatalf("SnapshotAt evicted: err = %v, want ErrGenerationGone", err)
			}
		})
	}
}

// TestWALCrashReplay simulates a crash between a published mutation and
// SaveIndex: the write-ahead log replays the lost mutations on reopen,
// restoring both the generation number and the query results; a
// checkpointed log (SaveIndex) replays nothing.
func TestWALCrashReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")

	d1 := IndexTables(ColumnStore, fig1Tables())
	closeWAL, err := d1.EnableWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := d1.AddTables(ctx, []*Table{snapTable(0), snapTable(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.RemoveTable(ids[1]); err != nil {
		t.Fatal(err)
	}
	wantGen := d1.Generation()
	wantHits, err := d1.Seek(ctx, SC(deps, 10))
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": the index is never saved; only the log survives.
	if err := closeWAL(); err != nil {
		t.Fatal(err)
	}

	// Reopen: rebuild the last saved state (the seed lake) and replay.
	d2 := IndexTables(ColumnStore, fig1Tables())
	closeWAL2, err := d2.EnableWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Generation(); got != wantGen {
		t.Fatalf("replayed generation %d, want %d", got, wantGen)
	}
	gotHits, err := d2.Seek(ctx, SC(deps, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHits, wantHits) {
		t.Fatalf("replayed top-k %v, want %v", gotHits, wantHits)
	}

	// SaveIndex checkpoints the log: a reopen from the saved index must
	// replay nothing (a duplicate replay would fail the ingest with a
	// typed duplicate-table error) and keep the generation numbering.
	idxPath := filepath.Join(dir, "lake.blend")
	if err := d2.SaveIndex(idxPath); err != nil {
		t.Fatal(err)
	}
	if err := closeWAL2(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	closeWAL3, err := d3.EnableWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWAL3()
	if got := d3.Generation(); got != wantGen {
		t.Fatalf("post-checkpoint generation %d, want %d", got, wantGen)
	}
	checkHits, err := d3.Seek(ctx, SC(deps, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(checkHits, wantHits) {
		t.Fatalf("post-checkpoint top-k %v, want %v", checkHits, wantHits)
	}
}
