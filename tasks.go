package blend

import "fmt"

// Prebuilt discovery plans for the higher-level tasks of §VII-A and §VIII-B
// of the paper. Each helper returns an ordinary Plan that can be extended
// further before running.

// UnionSearchPlan builds the union-search plan of §VII-A: one SC seeker per
// query-table column with a generous per-seeker limit, aggregated by a
// Counter combiner. Tables matching many columns rank first. perColumnK
// should exceed k so tables that only become relevant in combination
// survive the per-seeker cut (the paper uses 100 vs 10).
func UnionSearchPlan(query *Table, perColumnK, k int) *Plan {
	p := NewPlan()
	cols := make([]string, 0, query.NumCols())
	for c := 0; c < query.NumCols(); c++ {
		id := fmt.Sprintf("col_%s_%d", query.Columns[c].Name, c)
		p.MustAddSeeker(id, SC(query.DistinctColumnValues(c), perColumnK))
		cols = append(cols, id)
	}
	p.MustAddCombiner("counter", Counter(k), cols...)
	return p
}

// NegativeExamplesPlan builds the data-discovery-with-negative-examples
// task of §VIII-B2: tables containing the positive example tuples but none
// of the negative ones. Two MC seekers and a Difference combiner — 5 lines
// in the paper's API, three nodes here.
func NegativeExamplesPlan(positives, negatives [][]string, k int) *Plan {
	p := NewPlan()
	p.MustAddSeeker("P_examples", MC(positives, k))
	p.MustAddSeeker("N_examples", MC(negatives, k))
	p.MustAddCombiner("exclude", Difference(k), "P_examples", "N_examples")
	return p
}

// ImputationPlan builds the example-based data imputation task of
// §VIII-B3: tables containing the complete example rows (MC) intersected
// with tables containing the incomplete rows' known values (SC), following
// the data-imputation sub-plan of Fig. 4.
func ImputationPlan(examples [][]string, queries []string, k int) *Plan {
	p := NewPlan()
	p.MustAddSeeker("examples", MC(examples, k))
	p.MustAddSeeker("query", SC(queries, k))
	p.MustAddCombiner("intersection", Intersect(k), "examples", "query")
	return p
}

// FeatureDiscoveryPlan builds the multicollinearity-aware feature discovery
// task of §VIII-B4: tables with a column correlating with the target,
// excluding tables that correlate with any existing feature (one Difference
// per feature), intersected with tables joinable on the composite key.
//
// keys pairs positionally with target and with each existing feature
// column. joinTuples holds the join-key rows for the MC joinability check.
func FeatureDiscoveryPlan(keys []string, target []float64, features [][]float64, joinTuples [][]string, k int) *Plan {
	p := NewPlan()
	p.MustAddSeeker("target_corr", Correlation(keys, target, k))
	last := "target_corr"
	for i, feat := range features {
		fid := fmt.Sprintf("feature_corr_%d", i)
		did := fmt.Sprintf("collinearity_%d", i)
		p.MustAddSeeker(fid, Correlation(keys, feat, k))
		p.MustAddCombiner(did, Difference(k), last, fid)
		last = did
	}
	p.MustAddSeeker("joinable", MC(joinTuples, k))
	p.MustAddCombiner("result", Intersect(k), last, "joinable")
	return p
}

// MultiObjectivePlan builds the multi-objective discovery task of Listing 4
// (without the imputation sub-plan, as evaluated in §VIII-B5): keyword
// search, union search, and correlation search, aggregated with a Union
// combiner.
func MultiObjectivePlan(keywords []string, examples *Table, joinKeyColumn, targetColumn string, k int) (*Plan, error) {
	p := NewPlan()
	// Keyword search.
	p.MustAddSeeker("kw", KW(keywords, k))
	// Union search: one SC per column plus a Counter.
	colIDs := make([]string, 0, examples.NumCols())
	for c := 0; c < examples.NumCols(); c++ {
		id := fmt.Sprintf("union_col_%d", c)
		p.MustAddSeeker(id, SC(examples.DistinctColumnValues(c), 10*k))
		colIDs = append(colIDs, id)
	}
	p.MustAddCombiner("counter", Counter(k), colIDs...)
	// Correlation search on (join key, target).
	kc := examples.ColumnIndex(joinKeyColumn)
	tc := examples.ColumnIndex(targetColumn)
	if kc < 0 || tc < 0 {
		return nil, fmt.Errorf("blend: examples table lacks column %q or %q", joinKeyColumn, targetColumn)
	}
	targets, rows := examples.NumericColumnValues(tc)
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = examples.Cell(r, kc)
	}
	p.MustAddSeeker("correlation", Correlation(keys, targets, k))
	// Aggregate all sub-plans.
	p.MustAddCombiner("union", Union(4*k), "kw", "counter", "correlation")
	return p, nil
}
